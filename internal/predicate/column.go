// Column predicates: the vectorizable subset of vertex predicates.
// A bare comparison between one numeric attribute of the event and a
// constant (or a second numeric attribute) can be evaluated straight
// off a batch's dense numeric columns — no Binding, no closure tree,
// no map fallback. The batch ingest path uses this to pre-filter whole
// columns into a selection bitmap before any graph is touched.
package predicate

import "github.com/greta-cep/greta/internal/event"

// Column is a recognized vectorizable vertex predicate:
//
//	Attr OP Const    (RAttr == "")
//	Attr OP RAttr
//
// where OP is a comparison and both attributes are plain numeric
// references (no arithmetic — rounding could otherwise diverge from
// the scalar evaluator — and not the "time" pseudo-attribute).
type Column struct {
	Op    Op // OpEq, OpNeq, OpGt, OpGe, OpLt, OpLe
	Attr  string
	RAttr string  // second attribute; "" when the RHS is Const
	Const float64 // constant RHS, valid when RAttr == ""
}

// ColumnOf recognizes e as a Column, or returns nil. Recognition is
// deliberately narrow: only shapes whose dense-slot evaluation is
// provably identical to Compiled.EvalEvent on a map-free schema-bound
// event qualify (see Slots for the schema-side conditions).
func ColumnOf(e Expr) *Column {
	b, ok := e.(Binary)
	if !ok || !isCmp(b.Op) {
		return nil
	}
	lRef, lOK := bareRef(b.L)
	rRef, rOK := bareRef(b.R)
	switch {
	case lOK && rOK:
		return &Column{Op: b.Op, Attr: lRef.Attr, RAttr: rRef.Attr}
	case lOK:
		if c, ok := b.R.(Const); ok {
			return &Column{Op: b.Op, Attr: lRef.Attr, Const: c.V}
		}
	case rOK:
		if c, ok := b.L.(Const); ok {
			// Const OP Ref: mirror into Ref OP' Const.
			return &Column{Op: flipCmp(b.Op), Attr: rRef.Attr, Const: c.V}
		}
	}
	return nil
}

func isCmp(op Op) bool {
	switch op {
	case OpEq, OpNeq, OpGt, OpGe, OpLt, OpLe:
		return true
	}
	return false
}

// flipCmp mirrors a comparison across its operands (c OP x == x OP' c).
func flipCmp(op Op) Op {
	switch op {
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	}
	return op // Eq and Neq are symmetric
}

// bareRef matches a plain attribute reference. NEXT references cannot
// appear in vertex predicates (the classifier routes them to edges),
// and vertex evaluation binds the same event to both sides, so the
// Next flag is irrelevant — but "time" is a pseudo-attribute read from
// the timestamp, not a slot, and is excluded.
func bareRef(e Expr) (Ref, bool) {
	r, ok := e.(Ref)
	if !ok || r.Attr == "time" {
		return Ref{}, false
	}
	return r, true
}

// Slots resolves the column's numeric slot indices against sch:
// ls for Attr and rs for RAttr (rs = -1 for a constant RHS). ok is
// false when dense-slot evaluation could diverge from the scalar
// evaluator: an attribute without a numeric slot, or one shadowed by a
// string slot of the same name (the scalar Ref load falls through to
// the string value when the numeric one is absent, which a pure
// float compare cannot reproduce).
func (c *Column) Slots(sch *event.Schema) (ls, rs int, ok bool) {
	resolve := func(attr string) (int, bool) {
		s := sch.NumSlot(attr)
		if s < 0 || sch.StrSlot(attr) >= 0 {
			return -1, false
		}
		return s, true
	}
	if ls, ok = resolve(c.Attr); !ok {
		return -1, -1, false
	}
	rs = -1
	if c.RAttr != "" {
		if rs, ok = resolve(c.RAttr); !ok {
			return -1, -1, false
		}
	}
	return ls, rs, true
}

// EvalVals applies the comparison to raw slot values (NaN marks an
// absent attribute). The outcomes match Compiled.EvalEvent on a
// map-free schema-bound event bit for bit: Go float comparisons are
// false on NaN operands for every operator except !=, exactly as the
// scalar evaluator's NaN propagation behaves.
func (c *Column) EvalVals(l, r float64) bool {
	switch c.Op {
	case OpEq:
		return l == r
	case OpNeq:
		return l != r
	case OpGt:
		return l > r
	case OpGe:
		return l >= r
	case OpLt:
		return l < r
	case OpLe:
		return l <= r
	}
	return false
}
