package greta_test

import (
	"sync"
	"testing"

	"github.com/greta-cep/greta"
)

// TestRuntimeSharingDefault pins the public sharing surface: identical
// trend formation shares by default (RETURN divergence included), the
// runtime reports the collapse, results stay per-statement, and
// WithSharing(false) opts out.
func TestRuntimeSharingDefault(t *testing.T) {
	rt := greta.NewRuntime()
	h1, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt.Register(greta.MustCompile("RETURN COUNT(*), SUM(A.x) PATTERN A+ WITHIN 10 SLIDE 10"))
	if err != nil {
		t.Fatal(err)
	}
	h3, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"), greta.WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	if rs := rt.Stats(); rs.Statements != 3 || rs.SharedGraphs != 1 || rs.SharedStatements != 2 {
		t.Fatalf("runtime stats = %+v, want 3 statements, 2 shared on 1 graph", rs)
	}
	for i := 1; i <= 15; i++ {
		ev := &greta.Event{ID: uint64(i), Type: "A", Time: greta.Time(i), Attrs: map[string]float64{"x": float64(i)}}
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	var c1, c2, c3 []greta.Result
	for r := range h1.Results() {
		c1 = append(c1, r)
	}
	for r := range h2.Results() {
		c2 = append(c2, r)
	}
	for r := range h3.Results() {
		c3 = append(c3, r)
	}
	if len(c1) != 2 || len(c2) != 2 || len(c3) != 2 {
		t.Fatalf("windows = %d/%d/%d, want 2 each", len(c1), len(c2), len(c3))
	}
	for i := range c1 {
		// Shared and exclusive COUNT(*) agree; the shared SUM statement
		// reads its own slots from the same graph.
		if c1[i].Values[0] != c3[i].Values[0] {
			t.Errorf("window %d: shared count %v != exclusive count %v", i, c1[i].Values[0], c3[i].Values[0])
		}
		if c2[i].Values[0] != c1[i].Values[0] {
			t.Errorf("window %d: subscriber counts diverge: %v vs %v", i, c2[i].Values[0], c1[i].Values[0])
		}
		if len(c2[i].Values) != 2 || c2[i].Values[1] == 0 {
			t.Errorf("window %d: SUM subscriber values = %v", i, c2[i].Values)
		}
	}
	if got := h1.Stats().SharedStatements; got != 2 {
		t.Errorf("h1 SharedStatements = %d, want 2", got)
	}
	if got := h3.Stats().SharedStatements; got != 0 {
		t.Errorf("exclusive statement SharedStatements = %d, want 0", got)
	}
}

// TestRuntimeWithoutRetention pins drop-on-delivery mode: no replay
// buffer anywhere, Stats.Results still counts emissions, callbacks and
// live iterators receive everything.
func TestRuntimeWithoutRetention(t *testing.T) {
	rt := greta.NewRuntime()
	h, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"),
		greta.WithoutRetention())
	if err != nil {
		t.Fatal(err)
	}
	var viaCb int
	h.OnResult(func(greta.Result) { viaCb++ })

	// A live iterator sees the results emitted after its Results call
	// (the subscription starts at the call, so taking the iterator
	// before feeding observes everything).
	var viaIter int
	liveSeq := h.Results()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range liveSeq {
			viaIter++
		}
	}()

	for i := 1; i <= 45; i++ {
		if err := rt.Process(&greta.Event{ID: uint64(i), Type: "A", Time: greta.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if viaCb != 5 {
		t.Errorf("callback saw %d results, want 5", viaCb)
	}
	if viaIter != 5 {
		t.Errorf("live iterator saw %d results, want 5", viaIter)
	}
	if got := h.Stats().Results; got != 5 {
		t.Errorf("Stats.Results = %d, want 5 (counter must survive dropped retention)", got)
	}
	// No replay: an iterator started after close drains nothing.
	replay := 0
	for range h.Results() {
		replay++
	}
	if replay != 0 {
		t.Errorf("replay iterator saw %d results, want 0 under WithoutRetention", replay)
	}
}

// TestRuntimeWithoutRetentionShared combines both registration modes
// on one shared graph: the retaining subscriber replays, the
// drop-on-delivery one only counts.
func TestRuntimeWithoutRetentionShared(t *testing.T) {
	rt := greta.NewRuntime()
	keep, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"))
	if err != nil {
		t.Fatal(err)
	}
	drop, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"),
		greta.WithoutRetention())
	if err != nil {
		t.Fatal(err)
	}
	if rs := rt.Stats(); rs.SharedGraphs != 1 || rs.SharedStatements != 2 {
		t.Fatalf("sharing did not engage: %+v", rs)
	}
	for i := 1; i <= 25; i++ {
		if err := rt.Process(&greta.Event{ID: uint64(i), Type: "A", Time: greta.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for range keep.Results() {
		kept++
	}
	if kept != 3 {
		t.Errorf("retaining subscriber replayed %d windows, want 3", kept)
	}
	dropped := 0
	for range drop.Results() {
		dropped++
	}
	if dropped != 0 {
		t.Errorf("drop-on-delivery subscriber replayed %d windows, want 0", dropped)
	}
	if ks, ds := keep.Stats(), drop.Stats(); ks.Results != 3 || ds.Results != 3 {
		t.Errorf("Results counters = %d/%d, want 3/3", ks.Results, ds.Results)
	}
}
