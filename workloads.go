package greta

import "github.com/greta-cep/greta/internal/gen"

// The evaluation workloads of the paper (§10.1) are exposed for
// examples, benchmarks, and downstream experimentation.

// StockConfig parameterizes the NYSE-style transaction stream.
type StockConfig = gen.StockConfig

// LinearRoadConfig parameterizes the traffic position-report stream.
type LinearRoadConfig = gen.LinearRoadConfig

// ClusterConfig parameterizes the Hadoop cluster monitoring stream
// (Table 2 distributions).
type ClusterConfig = gen.ClusterConfig

// StockStream generates a stock transaction stream.
func StockStream(cfg StockConfig) []*Event { return gen.Stock(cfg) }

// DefaultStock returns the paper-shaped stock configuration.
func DefaultStock(events int) StockConfig { return gen.DefaultStock(events) }

// LinearRoadStream generates a position-report stream.
func LinearRoadStream(cfg LinearRoadConfig) []*Event { return gen.LinearRoad(cfg) }

// DefaultLinearRoad returns the benchmark-shaped traffic configuration.
func DefaultLinearRoad(events int) LinearRoadConfig { return gen.DefaultLinearRoad(events) }

// ClusterStream generates a cluster monitoring stream.
func ClusterStream(cfg ClusterConfig) []*Event { return gen.Cluster(cfg) }

// DefaultCluster returns the Table 2-shaped cluster configuration.
func DefaultCluster(events int) ClusterConfig { return gen.DefaultCluster(events) }
