package greta

import (
	"context"
	"iter"
	"net"
	"sync"

	"github.com/greta-cep/greta/internal/core"
)

// Sentinel errors returned by Runtime and Handle operations.
var (
	// ErrClosed reports an operation on a closed Runtime.
	ErrClosed = core.ErrClosed
	// ErrOutOfOrder reports an event older than the runtime watermark.
	// The event was counted and dropped for every registered statement
	// (the paper delegates out-of-order repair upstream, §2; see
	// netstream's reorder slack for a bounded repair buffer).
	ErrOutOfOrder = core.ErrOutOfOrder
	// ErrStatementClosed reports an operation on a closed Handle.
	ErrStatementClosed = core.ErrStatementClosed
	// ErrRunning reports Register/Close attempts while RunParallel owns
	// the runtime.
	ErrRunning = core.ErrRunning
)

// OrderError is the structured form of an out-of-order drop: the
// offending event's timestamp and the watermark it violated (the
// runtime watermark, or the reorder horizon when WithReorderSlack is
// armed). errors.Is(err, ErrOutOfOrder) matches it; errors.As extracts
// the diagnostics for reporting.
type OrderError = core.OrderError

// Runtime is a long-lived multi-query GRETA host: one shared ingest
// path feeding any number of registered statements. Each event is
// hashed once per distinct partition-attribute signature and fanned
// out to every registered statement's partitions, so N statements over
// the same grouping cost one routing hash per event. Statements can be
// registered and closed at any point mid-stream without restarting the
// stream: a statement registered at watermark T sees only events at or
// after T, and closing one statement does not perturb the others.
//
// Beyond the shared routing hash, the runtime shares whole sub-plans:
// statements whose trend formation coincides — same pattern shape,
// predicates, window, partition-by attributes, and selection semantics;
// only the RETURN aggregates may differ — are served by ONE shared
// GRETA graph (vertices, edges, pane summaries, and pools maintained
// once), with each statement's aggregates extracted from the shared
// per-window payload at window close. Sharing is on by default
// (WithSharing(false) opts a statement out) and engages only between
// statements registered at the same stream position: a statement
// registered mid-stream never inherits a warm graph's history — it
// opens a new shared graph seeded at its registration watermark.
// Stats() reports how far the statement set collapsed.
//
// Process, Register, and Close are safe to call from different
// goroutines (a mutex serializes them). Result callbacks run on the
// ingest path and must not call back into the Runtime or its Handles.
type Runtime struct {
	inner *core.Runtime
	// metLn is the WithMetricsAddr listener (nil when unarmed); Close
	// shuts it down with the runtime.
	metLn net.Listener
}

// NewRuntime builds an empty runtime; register statements with
// Register and feed events with Process or Run. Options configure
// runtime-wide behavior (see WithCheckpoint); NewRuntime panics on an
// invalid option combination (e.g. a non-positive checkpoint
// interval), which is a programming error, not a runtime condition.
func NewRuntime(opts ...RuntimeOption) *Runtime {
	var cfg runtimeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	rt := &Runtime{inner: core.NewRuntime()}
	if cfg.ckDir != "" {
		if err := rt.armCheckpoint(cfg.ckDir, cfg.ckEvery, -1, cfg.ckErr); err != nil {
			panic(err)
		}
	}
	if cfg.slack > 0 {
		if err := rt.inner.SetReorderSlack(cfg.slack); err != nil {
			panic(err)
		}
	}
	if cfg.ckMeta != nil {
		rt.inner.SetCheckpointMeta(cfg.ckMeta)
	}
	if err := rt.armObs(&cfg); err != nil {
		panic(err)
	}
	return rt
}

// RuntimeOption configures a Runtime at construction (NewRuntime) or
// restoration (Restore).
type RuntimeOption func(*runtimeConfig)

// runtimeConfig collects runtime-wide options.
type runtimeConfig struct {
	ckDir       string
	ckEvery     Time
	ckErr       func(error)
	ckMeta      func() []byte
	slack       Time
	metricsAddr string
	trace       func(TraceEvent)
	metricsOff  bool
}

// WithReorderSlack arms a bounded reorder buffer in front of the
// engines (the out-of-order handling the paper delegates upstream,
// §2): events may arrive up to slack time units behind the maximum
// timestamp seen and are re-sorted — equal timestamps keep arrival
// order — before application. Later arrivals are dropped with an
// OrderError from Process. Register, Handle.Close, Barrier, and Close
// flush the buffer first (lifecycle operations are barriers), while
// scheduled checkpoints persist the pending events inside the
// snapshot, so a restored runtime rehydrates its disorder window. A
// runtime with slack armed runs RunParallel sequentially. Slack 0 is
// the default direct path.
func WithReorderSlack(slack Time) RuntimeOption {
	return func(c *runtimeConfig) { c.slack = slack }
}

// RegisterOption configures one statement registration.
type RegisterOption func(*core.StmtConfig)

// WithID names the statement; results and netstream tags carry it.
// Default ids are "q0", "q1", ... in registration order (skipping any
// the user claimed). Register rejects an id already held by a live
// statement; a closed statement's id is reusable.
func WithID(id string) RegisterOption {
	return func(c *core.StmtConfig) { c.ID = id }
}

// WithTransactional runs the statement under the paper's §7
// stream-transaction scheduler (same results, concurrent dependency
// levels inside each partition). Transactional statements do not enter
// the shared sub-plan network.
func WithTransactional() RegisterOption {
	return func(c *core.StmtConfig) { c.Transactional = true }
}

// WithSharing controls the statement's participation in the shared
// sub-plan network (default on): statements whose trend formation
// coincides — everything but the RETURN aggregates — are served by one
// shared graph, each receiving its own aggregates at window close.
// Results, stats, and lifecycle are bit-identical either way; sharing
// only collapses the work. Composite (OR/AND), negation, and
// transactional statements always run exclusively.
func WithSharing(on bool) RegisterOption {
	return func(c *core.StmtConfig) { c.Share = on }
}

// WithoutRetention registers the statement in drop-on-delivery mode:
// neither the engine nor the Handle retains emitted results, bounding
// memory on unbounded streams whose consumers use the OnResult
// callback or a live Results iterator. Stats().Results still counts
// every emission; Results iterators yield only results emitted while
// they are being consumed (no replay).
func WithoutRetention() RegisterOption {
	return func(c *core.StmtConfig) { c.NoRetain = true }
}

// Register attaches a compiled statement to the shared ingest and
// returns its Handle. The statement sees events from the current
// watermark onward; windows that ended before registration are never
// emitted. Register works mid-stream on the sequential path; while
// RunParallel owns the runtime it fails eagerly with ErrRunning —
// before compiling any engine state — rather than racing the workers
// or blocking until the stream ends.
func (rt *Runtime) Register(stmt *Statement, opts ...RegisterOption) (*Handle, error) {
	cfg := core.StmtConfig{Share: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	st, err := rt.inner.Register(stmt.plan, cfg)
	if err != nil {
		return nil, err
	}
	h := &Handle{st: st, stmt: stmt, noBuf: cfg.NoRetain}
	h.cond = sync.NewCond(&h.mu)
	st.OnResult(h.deliver)
	st.OnClose(h.markDone)
	return h, nil
}

// Process offers one event to every registered statement. Events must
// arrive in non-decreasing time order: an older event is counted and
// dropped by every statement and ErrOutOfOrder is returned. After
// Close it returns ErrClosed.
func (rt *Runtime) Process(ev *Event) error { return rt.inner.Process(ev) }

// ProcessBatch offers a columnar batch to every registered statement,
// amortizing the per-event ingest overhead: the runtime hashes each
// partition-key run (consecutive rows with equal routing attributes)
// once instead of once per event, advances the watermark once at the
// batch tail, and — for eligible statements — pre-filters whole
// predicate columns so rows that cannot match any automaton state skip
// graph insertion entirely. Results, statistics, and checkpoint
// placement are bit-identical to feeding the same rows through Process
// one at a time.
//
// It returns the number of rows accepted. Rows must be sorted by
// non-decreasing time within the batch; an unsorted batch degrades to
// the per-event path (same semantics, no speedup). Without reorder
// slack, a prefix of rows older than the runtime watermark is counted
// and dropped per statement, the rest are applied, and ProcessBatch
// reports only the accepted count — no error, matching a per-event
// feed that skips ErrOutOfOrder drops and continues.
//
// With WithReorderSlack armed the batch is split against the reorder
// horizon: the in-order prefix of rows at or beyond every pending
// buffered event is applied columnar, rows that interleave with
// buffered stragglers are merged through the reorder buffer in
// timestamp order (equal timestamps keep arrival order, so a buffered
// straggler precedes a later-arriving batch row of the same time), and
// rows inside the slack window at the batch tail are themselves
// buffered as potential stragglers — counted as accepted, applied when
// the horizon passes them. Rows already behind the horizon are dropped
// exactly as Process would drop them. After Close it returns (0,
// ErrClosed); while RunParallel owns the runtime, (0, ErrRunning).
func (rt *Runtime) ProcessBatch(b *Batch) (int, error) { return rt.inner.ProcessBatch(b) }

// Run consumes the stream until it is exhausted or ctx is cancelled.
// Out-of-order events are counted and dropped; any other error aborts.
// Run does not close the runtime — more statements or streams may
// follow. Call Close to flush open windows at end of life.
func (rt *Runtime) Run(ctx context.Context, s Stream) error { return rt.inner.Run(ctx, s) }

// RunParallel consumes the whole stream with parallel workers shared
// by every registered statement, partitioning by grouping/equivalence
// attributes (paper §7). Results stream out as windows close: the
// coordinator broadcasts a per-window barrier, workers release their
// partial aggregates, and the merged result is emitted once every
// worker has passed the barrier — worker buffers stay bounded by the
// number of open windows. Unpartitioned and composite statements are
// processed inline with identical results.
//
// RunParallel must own the runtime from the start (no events processed
// yet); otherwise it falls back to the sequential Run. It drives the
// stream to completion (or ctx cancellation) and closes the runtime.
// Result callbacks may fire from internal goroutines. While it runs,
// Register, Handle.Close, Process, and Checkpoint return ErrRunning
// eagerly instead of racing the workers.
func (rt *Runtime) RunParallel(ctx context.Context, s Stream, workers int) error {
	return rt.inner.RunParallel(ctx, s, workers)
}

// Watermark returns the largest event time the runtime has accepted
// (-1 before the first event). A statement registered now sees events
// from this watermark onward.
func (rt *Runtime) Watermark() Time { return rt.inner.Watermark() }

// Barrier flushes the reorder buffer (WithReorderSlack), applying
// every pending event in order; a no-op without slack. Lifecycle
// operations (Register, Handle.Close, Close) barrier implicitly.
func (rt *Runtime) Barrier() error { return rt.inner.Barrier() }

// ReorderPending returns the number of events currently held in the
// reorder buffer (0 without slack).
func (rt *Runtime) ReorderPending() int { return rt.inner.ReorderPending() }

// SetReorderSlack arms (or, with 0, disarms) the reorder buffer after
// construction — the imperative form of WithReorderSlack for callers
// handed an already-built Runtime. It must run before the first event
// is processed and fails once ingestion has started.
func (rt *Runtime) SetReorderSlack(slack Time) error { return rt.inner.SetReorderSlack(slack) }

// ReorderSlack reports the armed slack (0 when disarmed).
func (rt *Runtime) ReorderSlack() Time { return rt.inner.ReorderSlack() }

// RuntimeStats summarizes the runtime's multi-query topology:
// registered statements, distinct routing hashes per event, and the
// shared sub-plan network's collapse — SharedStatements statements
// served by SharedGraphs shared graphs.
type RuntimeStats = core.RuntimeStats

// Stats reports the runtime's current multi-query topology (see
// RuntimeStats). Per-statement runtime statistics live on the Handles.
func (rt *Runtime) Stats() RuntimeStats { return rt.inner.Stats() }

// Close flushes every registered statement — their remaining open
// windows emit through the usual delivery paths — rejects further
// events and registrations, and shuts down the WithMetricsAddr
// listener if one is armed. Idempotent.
func (rt *Runtime) Close() error {
	if rt.metLn != nil {
		rt.metLn.Close()
	}
	return rt.inner.Close()
}

// Handle is one registered statement's lifecycle and result surface:
// close it to detach the statement mid-stream, consume results with
// the OnResult callback or the streaming Results iterator.
type Handle struct {
	st   *core.Stmt
	stmt *Statement

	mu   sync.Mutex
	cond *sync.Cond
	buf  []Result
	// noBuf (WithoutRetention) drops results after delivery instead of
	// buffering them; live holds the tails of currently subscribed
	// Results iterators, which still receive what is emitted while they
	// run.
	noBuf bool
	live  []*liveTail
	done  bool
	cb    func(Result)
}

// liveTail is one WithoutRetention iterator's pending-result queue: a
// bounded ring over a slice (head index, amortized O(1) pop). When the
// consumer lags more than liveTailMax results behind, the oldest
// pending ones are dropped — the mode's contract is bounded memory,
// and a tail that outgrew its consumer would void it.
type liveTail struct {
	rs   []Result
	head int
}

// liveTailMax bounds each live iterator's pending results.
const liveTailMax = 4096

// push appends under the bound, compacting the consumed prefix.
func (t *liveTail) push(r Result) {
	if len(t.rs)-t.head >= liveTailMax {
		t.head++ // lagging consumer: drop the oldest pending result
	}
	if t.head > 0 && (t.head == len(t.rs) || t.head >= liveTailMax) {
		n := copy(t.rs, t.rs[t.head:])
		t.rs = t.rs[:n]
		t.head = 0
	}
	t.rs = append(t.rs, r)
}

// pop removes and returns the oldest pending result.
func (t *liveTail) pop() Result {
	r := t.rs[t.head]
	t.rs[t.head] = Result{}
	t.head++
	return r
}

func (t *liveTail) empty() bool { return t.head >= len(t.rs) }

// deliver is the statement's result sink: it records the result for
// the Results iterators (or feeds the live iterator tails in
// drop-on-delivery mode), then invokes the user callback.
func (h *Handle) deliver(r Result) {
	h.mu.Lock()
	if !h.noBuf {
		h.buf = append(h.buf, r)
	}
	for _, q := range h.live {
		q.push(r)
	}
	cb := h.cb
	h.cond.Broadcast()
	h.mu.Unlock()
	if cb != nil {
		cb(r)
	}
}

// markDone ends the result stream (statement closed and flushed).
func (h *Handle) markDone() {
	h.mu.Lock()
	h.done = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// ID returns the statement's identifier ("q<n>" unless WithID chose
// another).
func (h *Handle) ID() string { return h.st.ID() }

// Query returns the canonical text of the statement's query.
func (h *Handle) Query() string { return h.stmt.Query() }

// OnResult registers a callback invoked for every emitted result, as
// soon as its window closes. The callback runs on the ingest path
// (or an internal goroutine under RunParallel) and must not call back
// into the Runtime or Handle.
func (h *Handle) OnResult(f func(Result)) {
	h.mu.Lock()
	h.cb = f
	h.mu.Unlock()
}

// Results streams the statement's results as windows close. The
// iterator yields every result emitted so far and then blocks until
// more arrive, returning when the statement (or runtime) is closed —
// consume it from its own goroutine while the stream is being fed, or
// after Close to drain everything. Multiple iterators each see the
// full result sequence: results are retained for the statement's
// lifetime (as Engine.Results always did), so close statements you are
// done with on unbounded streams — or register them WithoutRetention,
// in which case nothing is replayed or retained: the iterator receives
// the results emitted from the moment Results is called (the
// subscription starts at the call, so grab the iterator before feeding
// the events it should observe), each result is dropped once consumed,
// and a consumer lagging more than a few thousand results behind loses
// the oldest pending ones (the pending tail is bounded).
func (h *Handle) Results() iter.Seq[Result] {
	h.mu.Lock()
	var q *liveTail
	if h.noBuf {
		q = h.subscribeLocked()
	}
	h.mu.Unlock()
	return func(yield func(Result) bool) {
		if q != nil {
			defer h.unsubscribe(q)
			for {
				h.mu.Lock()
				for q.empty() && !h.done {
					h.cond.Wait()
				}
				if q.empty() {
					h.mu.Unlock()
					return
				}
				r := q.pop()
				h.mu.Unlock()
				if !yield(r) {
					return
				}
			}
		}
		idx := 0
		for {
			h.mu.Lock()
			for idx >= len(h.buf) && !h.done {
				h.cond.Wait()
			}
			if idx >= len(h.buf) {
				h.mu.Unlock()
				return
			}
			r := h.buf[idx]
			idx++
			h.mu.Unlock()
			if !yield(r) {
				return
			}
		}
	}
}

// subscribeLocked registers a live iterator tail; h.mu held.
func (h *Handle) subscribeLocked() *liveTail {
	q := &liveTail{}
	h.live = append(h.live, q)
	return q
}

// unsubscribe detaches a live iterator tail.
func (h *Handle) unsubscribe(q *liveTail) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, x := range h.live {
		if x == q {
			h.live = append(h.live[:i], h.live[i+1:]...)
			return
		}
	}
}

// Delivered snapshots the results delivered so far, in emission order,
// without blocking (Results streams and waits for more). Statements
// registered WithoutRetention return nil — nothing is retained to
// snapshot. netstream uses it to re-deliver a session's retained
// results when a resuming client has fallen behind the replay window.
func (h *Handle) Delivered() []Result { return h.bufferedResults() }

// bufferedResults snapshots the handle's delivered results in emission
// order (the deprecated Engine shim serves Results from it).
func (h *Handle) bufferedResults() []Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Result(nil), h.buf...)
}

// Stats returns the statement's runtime statistics. Call it between
// Process calls or after Close; it reads live engine state. For a
// statement served by a shared graph, the counters are identical to
// what a private engine would have accumulated, Results counts this
// statement's deliveries, and SharedStatements reports how many
// statements share the graph.
func (h *Handle) Stats() Stats { return h.st.Stats() }

// Close detaches the statement from the shared ingest mid-stream,
// flushing its open windows (their results are delivered before Close
// returns, and Results iterators then terminate). Other statements are
// not perturbed. Returns ErrStatementClosed if already closed.
func (h *Handle) Close() error { return h.st.Close() }
