package greta

import (
	"context"
	"iter"
	"sync"

	"github.com/greta-cep/greta/internal/core"
)

// Sentinel errors returned by Runtime and Handle operations.
var (
	// ErrClosed reports an operation on a closed Runtime.
	ErrClosed = core.ErrClosed
	// ErrOutOfOrder reports an event older than the runtime watermark.
	// The event was counted and dropped for every registered statement
	// (the paper delegates out-of-order repair upstream, §2; see
	// netstream's reorder slack for a bounded repair buffer).
	ErrOutOfOrder = core.ErrOutOfOrder
	// ErrStatementClosed reports an operation on a closed Handle.
	ErrStatementClosed = core.ErrStatementClosed
	// ErrRunning reports Register/Close attempts while RunParallel owns
	// the runtime.
	ErrRunning = core.ErrRunning
)

// Runtime is a long-lived multi-query GRETA host: one shared ingest
// path feeding any number of registered statements. Each event is
// hashed once per distinct partition-attribute signature and fanned
// out to every registered statement's partitions, so N statements over
// the same grouping cost one routing hash per event. Statements can be
// registered and closed at any point mid-stream without restarting the
// stream: a statement registered at watermark T sees only events at or
// after T, and closing one statement does not perturb the others.
//
// Process, Register, and Close are safe to call from different
// goroutines (a mutex serializes them). Result callbacks run on the
// ingest path and must not call back into the Runtime or its Handles.
type Runtime struct {
	inner *core.Runtime
}

// NewRuntime builds an empty runtime; register statements with
// Register and feed events with Process or Run.
func NewRuntime() *Runtime {
	return &Runtime{inner: core.NewRuntime()}
}

// RegisterOption configures one statement registration.
type RegisterOption func(*core.StmtConfig)

// WithID names the statement; results and netstream tags carry it.
// Default ids are "q0", "q1", ... in registration order (skipping any
// the user claimed). Register rejects an id already held by a live
// statement; a closed statement's id is reusable.
func WithID(id string) RegisterOption {
	return func(c *core.StmtConfig) { c.ID = id }
}

// WithTransactional runs the statement under the paper's §7
// stream-transaction scheduler (same results, concurrent dependency
// levels inside each partition).
func WithTransactional() RegisterOption {
	return func(c *core.StmtConfig) { c.Transactional = true }
}

// Register attaches a compiled statement to the shared ingest and
// returns its Handle. The statement sees events from the current
// watermark onward; windows that ended before registration are never
// emitted. Register works mid-stream.
func (rt *Runtime) Register(stmt *Statement, opts ...RegisterOption) (*Handle, error) {
	var cfg core.StmtConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	st, err := rt.inner.Register(stmt.plan, cfg)
	if err != nil {
		return nil, err
	}
	h := &Handle{st: st, stmt: stmt}
	h.cond = sync.NewCond(&h.mu)
	st.Engine().OnResult(h.deliver)
	st.OnClose(h.markDone)
	return h, nil
}

// Process offers one event to every registered statement. Events must
// arrive in non-decreasing time order: an older event is counted and
// dropped by every statement and ErrOutOfOrder is returned. After
// Close it returns ErrClosed.
func (rt *Runtime) Process(ev *Event) error { return rt.inner.Process(ev) }

// Run consumes the stream until it is exhausted or ctx is cancelled.
// Out-of-order events are counted and dropped; any other error aborts.
// Run does not close the runtime — more statements or streams may
// follow. Call Close to flush open windows at end of life.
func (rt *Runtime) Run(ctx context.Context, s Stream) error { return rt.inner.Run(ctx, s) }

// RunParallel consumes the whole stream with parallel workers shared
// by every registered statement, partitioning by grouping/equivalence
// attributes (paper §7). Results stream out as windows close: the
// coordinator broadcasts a per-window barrier, workers release their
// partial aggregates, and the merged result is emitted once every
// worker has passed the barrier — worker buffers stay bounded by the
// number of open windows. Unpartitioned and composite statements are
// processed inline with identical results.
//
// RunParallel must own the runtime from the start (no events processed
// yet); otherwise it falls back to the sequential Run. It drives the
// stream to completion (or ctx cancellation) and closes the runtime.
// Result callbacks may fire from internal goroutines.
func (rt *Runtime) RunParallel(ctx context.Context, s Stream, workers int) error {
	return rt.inner.RunParallel(ctx, s, workers)
}

// Watermark returns the largest event time the runtime has accepted
// (-1 before the first event). A statement registered now sees events
// from this watermark onward.
func (rt *Runtime) Watermark() Time { return rt.inner.Watermark() }

// Close flushes every registered statement — their remaining open
// windows emit through the usual delivery paths — and rejects further
// events and registrations. Idempotent.
func (rt *Runtime) Close() error { return rt.inner.Close() }

// Handle is one registered statement's lifecycle and result surface:
// close it to detach the statement mid-stream, consume results with
// the OnResult callback or the streaming Results iterator.
type Handle struct {
	st   *core.Stmt
	stmt *Statement

	mu   sync.Mutex
	cond *sync.Cond
	buf  []Result
	done bool
	cb   func(Result)
}

// deliver is the engine's OnResult sink: it records the result for the
// Results iterators, then invokes the user callback.
func (h *Handle) deliver(r Result) {
	h.mu.Lock()
	h.buf = append(h.buf, r)
	cb := h.cb
	h.cond.Broadcast()
	h.mu.Unlock()
	if cb != nil {
		cb(r)
	}
}

// markDone ends the result stream (statement closed and flushed).
func (h *Handle) markDone() {
	h.mu.Lock()
	h.done = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// ID returns the statement's identifier ("q<n>" unless WithID chose
// another).
func (h *Handle) ID() string { return h.st.ID() }

// Query returns the canonical text of the statement's query.
func (h *Handle) Query() string { return h.stmt.Query() }

// OnResult registers a callback invoked for every emitted result, as
// soon as its window closes. The callback runs on the ingest path
// (or an internal goroutine under RunParallel) and must not call back
// into the Runtime or Handle.
func (h *Handle) OnResult(f func(Result)) {
	h.mu.Lock()
	h.cb = f
	h.mu.Unlock()
}

// Results streams the statement's results as windows close. The
// iterator yields every result emitted so far and then blocks until
// more arrive, returning when the statement (or runtime) is closed —
// consume it from its own goroutine while the stream is being fed, or
// after Close to drain everything. Multiple iterators each see the
// full result sequence: results are retained for the statement's
// lifetime (as Engine.Results always did), so close statements you are
// done with on unbounded streams.
func (h *Handle) Results() iter.Seq[Result] {
	return func(yield func(Result) bool) {
		idx := 0
		for {
			h.mu.Lock()
			for idx >= len(h.buf) && !h.done {
				h.cond.Wait()
			}
			if idx >= len(h.buf) {
				h.mu.Unlock()
				return
			}
			r := h.buf[idx]
			idx++
			h.mu.Unlock()
			if !yield(r) {
				return
			}
		}
	}
}

// Stats returns the statement's runtime statistics. Call it between
// Process calls or after Close; it reads live engine state.
func (h *Handle) Stats() Stats { return h.st.Engine().Stats() }

// Close detaches the statement from the shared ingest mid-stream,
// flushing its open windows (their results are delivered before Close
// returns, and Results iterators then terminate). Other statements are
// not perturbed. Returns ErrStatementClosed if already closed.
func (h *Handle) Close() error { return h.st.Close() }
