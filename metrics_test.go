package greta_test

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/obs"
)

// metricsShapes are the fastpath shapes the differential test drives:
// the snapshot must agree with the legacy Stats surfaces on every one.
var metricsShapes = []struct {
	name    string
	queries []string
	opts    func(t *testing.T) []greta.RuntimeOption
	batch   int // >1: feed through ProcessBatch blocks of this size
}{
	{
		name: "summary-fold",
		queries: []string{`RETURN sector, COUNT(*) PATTERN Stock S+
			WHERE [company, sector] AND S.price > NEXT(S).price
			GROUP-BY sector WITHIN 60 seconds SLIDE 20 seconds`},
	},
	{
		name: "negation",
		queries: []string{`RETURN company, COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H, Stock E)
			WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`},
	},
	{
		name: "shared-statements",
		queries: []string{
			`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`,
			`RETURN SUM(S.price) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`,
		},
	},
	{
		name:    "checkpointed",
		queries: []string{`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`},
		opts: func(t *testing.T) []greta.RuntimeOption {
			return []greta.RuntimeOption{greta.WithCheckpoint(t.TempDir(), 2)}
		},
	},
	{
		name:    "reorder-slack",
		queries: []string{`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`},
		opts: func(t *testing.T) []greta.RuntimeOption {
			return []greta.RuntimeOption{greta.WithReorderSlack(5)}
		},
	},
	{
		name:    "batch-ingest",
		queries: []string{`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`},
		batch:   64,
	},
}

// TestMetricsMatchesStats is the snapshot-consistency contract: at end
// of run (statements still registered), Runtime.Metrics() must equal
// the legacy Stats surfaces bit for bit — the snapshot is a view, not
// a second set of books.
func TestMetricsMatchesStats(t *testing.T) {
	cfg := greta.DefaultStock(4000)
	cfg.HaltProb = 0.02
	events := greta.StockStream(cfg)
	for _, shape := range metricsShapes {
		t.Run(shape.name, func(t *testing.T) {
			var opts []greta.RuntimeOption
			if shape.opts != nil {
				opts = shape.opts(t)
			}
			rt := greta.NewRuntime(opts...)
			handles := make([]*greta.Handle, 0, len(shape.queries))
			for _, q := range shape.queries {
				h, err := rt.Register(greta.MustCompile(q))
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			}
			var fed uint64
			if shape.batch > 1 {
				feedStockBatches(t, rt, events, shape.batch)
				fed = uint64(len(events))
			} else {
				for _, ev := range events {
					if err := rt.Process(ev); err != nil {
						t.Fatal(err)
					}
					fed++
				}
			}
			if err := rt.Barrier(); err != nil {
				t.Fatal(err)
			}

			m := rt.Metrics()
			if m.Events != fed {
				t.Errorf("Events = %d, want %d", m.Events, fed)
			}
			if m.Watermark != rt.Watermark() {
				t.Errorf("Watermark = %d, Runtime.Watermark() = %d", m.Watermark, rt.Watermark())
			}
			if m.Runtime != rt.Stats() {
				t.Errorf("Runtime section %+v != Stats() %+v", m.Runtime, rt.Stats())
			}
			if len(m.Statements) != len(handles) {
				t.Fatalf("snapshot has %d statements, want %d", len(m.Statements), len(handles))
			}
			byID := map[string]greta.StatementMetrics{}
			for _, sm := range m.Statements {
				byID[sm.ID] = sm
			}
			for _, h := range handles {
				sm, ok := byID[h.ID()]
				if !ok {
					t.Fatalf("statement %q missing from snapshot", h.ID())
				}
				if !reflect.DeepEqual(sm.Stats, h.Stats()) {
					t.Errorf("statement %q: snapshot stats %+v != Handle.Stats() %+v", h.ID(), sm.Stats, h.Stats())
				}
			}
			if ck := m.Checkpoint; shape.name == "checkpointed" {
				if !ck.Armed || ck.Writes == 0 || ck.TotalBytes == 0 || ck.LastBoundary < 0 || ck.Age <= 0 {
					t.Errorf("checkpoint section not live: %+v", ck)
				}
			}
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			// Cell-backed counters survive Close; engine stats are torn down.
			after := rt.Metrics()
			if after.Events != fed || after.Statements != nil {
				t.Errorf("post-Close snapshot: events=%d statements=%v", after.Events, after.Statements)
			}
		})
	}
}

// feedStockBatches feeds the stock stream through ProcessBatch in
// same-type blocks of up to n rows.
func feedStockBatches(t *testing.T, rt *greta.Runtime, events []*greta.Event, n int) {
	t.Helper()
	schemas := map[greta.Type]*greta.Schema{
		"Stock": {Type: "Stock", Numeric: []string{"price"}, Strings: []string{"company", "sector"}},
		"Halt":  {Type: "Halt", Strings: []string{"company", "sector"}},
	}
	var cur *greta.Batch
	flush := func() {
		if cur == nil || cur.Len() == 0 {
			return
		}
		if _, err := rt.ProcessBatch(cur); err != nil {
			t.Fatal(err)
		}
		cur = nil
	}
	for _, ev := range events {
		if cur != nil && (cur.Type() != ev.Type || cur.Len() >= n) {
			flush()
		}
		if cur == nil {
			cur = greta.NewBatch(schemas[ev.Type], n)
		}
		if err := cur.AppendEvent(ev); err != nil {
			flush()
			if err := rt.Process(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	flush()
}

// TestMetricsEndpoint runs a checkpointed stream with the HTTP surface
// armed and asserts the Prometheus exposition parses and carries the
// key series with live values.
func TestMetricsEndpoint(t *testing.T) {
	rt := greta.NewRuntime(
		greta.WithMetricsAddr("127.0.0.1:0"),
		greta.WithCheckpoint(t.TempDir(), 2),
	)
	defer rt.Close()
	if _, err := rt.Register(greta.MustCompile(
		`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`)); err != nil {
		t.Fatal(err)
	}
	events := greta.StockStream(greta.DefaultStock(3000))
	for _, ev := range events {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}

	addr := rt.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with WithMetricsAddr armed")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	series, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	m := rt.Metrics()
	checks := map[string]float64{
		"greta_events_total":             float64(m.Events),
		"greta_watermark":                float64(m.Watermark),
		"greta_watermark_lag":            float64(m.WatermarkLag),
		"greta_checkpoint_writes_total":  float64(m.Checkpoint.Writes),
		"greta_stmt_summary_folds_total": -1, // presence only (advances between scrape and snapshot is impossible here, but keyed by label)
	}
	for name, want := range checks {
		if !obs.HasSeries(series, name) {
			t.Errorf("series %s missing from /metrics", name)
			continue
		}
		if v, ok := series[name]; ok && want >= 0 && v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
	if !obs.HasSeries(series, "greta_checkpoint_age_seconds") {
		t.Error("greta_checkpoint_age_seconds missing")
	}
	if series[`greta_stmt_events_total{stmt="q0"}`] != float64(m.Statements[0].Stats.Events) {
		t.Errorf("per-statement series disagrees with snapshot: %v vs %v",
			series[`greta_stmt_events_total{stmt="q0"}`], m.Statements[0].Stats.Events)
	}

	// The JSON view and pprof mounts serve on the same listener.
	for _, path := range []string{"/metrics.json", "/debug/vars", "/debug/pprof/cmdline"} {
		r2, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, r2.StatusCode)
		}
	}
}

// TestMetricsConcurrentScrape races the snapshot and HTTP surfaces
// against a RunParallel feed (run under -race in CI): scrapes during
// the run must not panic, deadlock, or tear.
func TestMetricsConcurrentScrape(t *testing.T) {
	rt := greta.NewRuntime(greta.WithMetricsAddr("127.0.0.1:0"))
	if _, err := rt.Register(greta.MustCompile(
		`RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E)
		 WHERE [job, mapper] AND M.load < NEXT(M).load GROUP-BY mapper
		 WITHIN 20 seconds SLIDE 10 seconds`)); err != nil {
		t.Fatal(err)
	}
	events := greta.ClusterStream(greta.DefaultCluster(20000))
	addr := rt.MetricsAddr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := rt.Metrics()
			if m.MaxEventTime < m.Watermark {
				t.Errorf("torn snapshot: max %d < watermark %d", m.MaxEventTime, m.Watermark)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				return // listener closed by rt.Close at test end
			}
			if _, err := obs.ParseProm(resp.Body); err != nil {
				t.Errorf("scrape during run does not parse: %v", err)
			}
			resp.Body.Close()
		}
	}()

	if err := rt.RunParallel(t.Context(), greta.NewSliceStream(events), 4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if m := rt.Metrics(); m.Events != uint64(len(events)) {
		t.Errorf("Events = %d after RunParallel, want %d", m.Events, len(events))
	}
	_ = rt.Close()
}

// TestTraceHook asserts the runtime's lifecycle kinds fire in order
// with their payload fields populated.
func TestTraceHook(t *testing.T) {
	var mu sync.Mutex
	var seen []greta.TraceEvent
	rt := greta.NewRuntime(
		greta.WithCheckpoint(t.TempDir(), 2),
		greta.WithTraceHook(func(te greta.TraceEvent) {
			mu.Lock()
			seen = append(seen, te)
			mu.Unlock()
		}),
	)
	h, err := rt.Register(greta.MustCompile(
		`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range greta.StockStream(greta.DefaultStock(2000)) {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	_ = rt.Close()

	counts := map[greta.TraceKind]int{}
	for _, te := range seen {
		counts[te.Kind]++
		switch te.Kind {
		case greta.TraceStatementRegister, greta.TraceStatementClose:
			if te.Stmt != "q0" {
				t.Errorf("%v carries stmt %q, want q0", te.Kind, te.Stmt)
			}
		case greta.TraceCheckpointCommit:
			if te.Bytes <= 0 || te.Dur <= 0 {
				t.Errorf("checkpoint-commit without payload: %+v", te)
			}
		}
	}
	if counts[greta.TraceStatementRegister] != 1 || counts[greta.TraceStatementClose] != 1 {
		t.Errorf("register/close fired %d/%d times, want 1/1",
			counts[greta.TraceStatementRegister], counts[greta.TraceStatementClose])
	}
	if counts[greta.TraceCheckpointBegin] == 0 || counts[greta.TraceCheckpointCommit] == 0 {
		t.Errorf("checkpoint trace never fired: %v", counts)
	}
	if counts[greta.TraceCheckpointBegin] != counts[greta.TraceCheckpointCommit]+counts[greta.TraceCheckpointFail] {
		t.Errorf("unbalanced checkpoint trace: %v", counts)
	}
}

// TestMetricsDisabled pins WithMetricsDisabled: cell-backed series
// stop moving, the runtime keeps working.
func TestMetricsDisabled(t *testing.T) {
	rt := greta.NewRuntime(greta.WithMetricsDisabled())
	h, err := rt.Register(greta.MustCompile(`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`))
	if err != nil {
		t.Fatal(err)
	}
	events := greta.StockStream(greta.DefaultStock(1000))
	for _, ev := range events {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	m := rt.Metrics()
	if m.Events != 0 {
		t.Errorf("disarmed Events = %d, want 0", m.Events)
	}
	// The sampled sections still work from live structures.
	if m.Runtime != rt.Stats() {
		t.Errorf("Runtime section %+v != Stats() %+v", m.Runtime, rt.Stats())
	}
	if got := m.Statements[0].Stats; got != h.Stats() {
		t.Errorf("statement stats %+v != %+v", got, h.Stats())
	}
	_ = rt.Close()
}

// BenchmarkMetricsOverhead measures the armed hot-path cost against
// the WithMetricsDisabled baseline on the summary-fold fastpath; the
// acceptance budget is <=3%.
func BenchmarkMetricsOverhead(b *testing.B) {
	events := greta.StockStream(greta.DefaultStock(20000))
	for _, leg := range []struct {
		name  string
		armed bool
	}{{"armed", true}, {"disarmed", false}} {
		b.Run(leg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var opts []greta.RuntimeOption
				if !leg.armed {
					opts = append(opts, greta.WithMetricsDisabled())
				}
				rt := greta.NewRuntime(opts...)
				if _, err := rt.Register(greta.MustCompile(
					`RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 60 seconds SLIDE 20 seconds`)); err != nil {
					b.Fatal(err)
				}
				for _, ev := range events {
					if err := rt.Process(ev); err != nil {
						b.Fatal(err)
					}
				}
				_ = rt.Close()
			}
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			}
		})
	}
}

// Compile-time check: the example in the README ("Observability")
// uses these exact symbols.
var _ = []any{
	greta.WithMetricsAddr, greta.WithTraceHook, greta.WithMetricsDisabled,
	(*greta.Runtime).Metrics, (*greta.Runtime).MetricsAddr, (*greta.Runtime).MetricsHandler,
	fmt.Sprintf, time.Since,
}
