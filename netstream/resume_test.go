package netstream

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/faultnet"
)

// testEvt is one deterministic generated stream event.
type testEvt struct {
	typ   string
	tm    int64
	price float64
	co    string
}

// genStream produces a deterministic stock stream with bounded
// disorder: times mostly advance, jitter pulls events back by up to
// slack+2 (occasionally past the slack, forcing deterministic drops).
func genStream(n int, slack int64, seed uint64) []testEvt {
	rnd := seed
	next := func(mod uint64) uint64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return (rnd >> 33) % mod
	}
	evs := make([]testEvt, 0, n)
	base := int64(0)
	for i := 0; i < n; i++ {
		base += int64(next(3))
		jit := int64(next(uint64(slack) + 3))
		tm := base - jit
		if tm < 0 {
			tm = 0
		}
		typ := "Stock"
		switch next(10) {
		case 0:
			typ = "Halt"
		case 1:
			typ = "News"
		}
		evs = append(evs, testEvt{
			typ: typ, tm: tm,
			price: float64(5 + next(20)),
			co:    fmt.Sprintf("co%d", next(3)),
		})
	}
	return evs
}

func startResumeServer(t *testing.T, srv *Server, queries ...string) string {
	t.Helper()
	for _, q := range queries {
		stmt, err := greta.Compile(q)
		if err != nil {
			t.Fatalf("compile %q: %v", q, err)
		}
		srv.Statements = append(srv.Statements, stmt)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// runResumable drives one resumable session over a fault-injected
// connection: events are sent in order, the connection is severed at
// event boundary killAt (or mid-line once writeBudget bytes have gone
// out), Resume heals it, and the session is flushed. killAt < 0 and
// writeBudget <= 0 run uninterrupted.
func runResumable(t *testing.T, addr string, evs []testEvt, killAt int, writeBudget int64) ([]WireResult, *WireDone) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	f := faultnet.New()
	c := NewClient(f.Conn(raw))
	c.addr = addr
	defer c.Close()
	if _, err := c.EnableResume(ctx); err != nil {
		t.Fatalf("EnableResume: %v", err)
	}
	if writeBudget > 0 {
		f.CutAfterWrites(writeBudget)
	}
	for i, e := range evs {
		if i == killAt {
			f.Cut()
			if err := c.Resume(ctx); err != nil {
				t.Fatalf("Resume at boundary %d: %v", i, err)
			}
		}
		if err := c.Send(e.typ, e.tm, map[string]float64{"price": e.price}, map[string]string{"company": e.co}); err != nil {
			// The torn write revealed the cut; the event is already in the
			// resend ring, so healing the session replays it.
			if err := c.Resume(ctx); err != nil {
				t.Fatalf("Resume after torn send %d: %v", i, err)
			}
		}
	}
	if killAt == len(evs) {
		f.Cut()
		if err := c.Resume(ctx); err != nil {
			t.Fatalf("Resume at final boundary: %v", err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return results, c.Summary()
}

// sortResults orders results by identity: flush-time emission order
// is not deterministic across runs (partition/window close order), so
// the differential compares the sets.
func sortResults(rs []WireResult) []WireResult {
	out := append([]WireResult(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Stmt != b.Stmt {
			return a.Stmt < b.Stmt
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		if a.Wid != b.Wid {
			return a.Wid < b.Wid
		}
		return a.Start < b.Start
	})
	return out
}

func sameResults(t *testing.T, label string, got, want []WireResult) {
	t.Helper()
	got, want = sortResults(got), sortResults(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		same := g.Stmt == w.Stmt && g.Group == w.Group && g.Wid == w.Wid &&
			g.Start == w.Start && g.End == w.End && len(g.Values) == len(w.Values)
		if same {
			for j := range w.Values {
				if math.Float64bits(g.Values[j]) != math.Float64bits(w.Values[j]) {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, g, w)
		}
	}
}

func sameSummary(t *testing.T, label string, got, want *WireDone) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing summary (got %v, want %v)", label, got, want)
	}
	if got.Events != want.Events || got.Dropped != want.Dropped ||
		got.SharedStmts != want.SharedStmts || got.SharedGraphs != want.SharedGraphs {
		t.Fatalf("%s: summary = %+v, want %+v", label, got, want)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("%s: stats diverged\n got: %+v\nwant: %+v", label, got.Stats, want.Stats)
	}
}

// TestSessionResumeDifferential is the resilience differential: for
// each shape, a reference session runs uninterrupted, then the
// connection is killed at every event boundary (and torn mid-line at
// several byte offsets) and resumed — results, per-statement Stats,
// and drop counts must match the reference bit for bit.
func TestSessionResumeDifferential(t *testing.T) {
	shapes := []struct {
		name    string
		queries []string
		slack   int64
		n       int
		seed    uint64
	}{
		{"kleene-sum", []string{"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"}, 4, 30, 1},
		{"unwindowed", []string{"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price >= NEXT(S).price"}, 3, 24, 2},
		{"multi-agg", []string{"RETURN COUNT(*), MIN(S.price), MAX(S.price), AVG(S.price) PATTERN Stock S+ WITHIN 16 SLIDE 4"}, 5, 30, 3},
		{"seq-halt", []string{"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price < NEXT(S).price WITHIN 24 SLIDE 8"}, 4, 30, 4},
		{"skip-till-next", []string{"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS skip-till-next-match WITHIN 20 SLIDE 5"}, 4, 24, 5},
		{"contiguous", []string{"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price SEMANTICS contiguous WITHIN 20 SLIDE 5"}, 3, 24, 6},
		{"negation", []string{"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10"}, 5, 30, 7},
		{"disjunction", []string{"RETURN COUNT(*) PATTERN Stock S+ OR Halt H+ WITHIN 20 SLIDE 5"}, 4, 24, 8},
		{"shared-pair", []string{
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		}, 4, 30, 9},
		{"zero-slack", []string{"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] WITHIN 16 SLIDE 4"}, 0, 24, 10},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			t.Parallel()
			srv := &Server{Slack: greta.Time(sh.slack), Linger: time.Minute}
			addr := startResumeServer(t, srv, sh.queries...)
			evs := genStream(sh.n, maxI64(sh.slack, 1), sh.seed)
			wantRes, wantSum := runResumable(t, addr, evs, -1, 0)
			for killAt := 0; killAt <= len(evs); killAt++ {
				label := fmt.Sprintf("kill@%d", killAt)
				gotRes, gotSum := runResumable(t, addr, evs, killAt, 0)
				sameResults(t, label, gotRes, wantRes)
				sameSummary(t, label, gotSum, wantSum)
			}
			// Torn mid-line kills: sever after a byte budget that lands
			// inside a JSON event line, well before the flush command.
			for _, budget := range []int64{60, 500, 1100} {
				label := fmt.Sprintf("torn@%d", budget)
				gotRes, gotSum := runResumable(t, addr, evs, -1, budget)
				sameResults(t, label, gotRes, wantRes)
				sameSummary(t, label, gotSum, wantSum)
			}
		})
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestSessionRestartFromCheckpoint kills the whole server (not just
// the connection) after a checkpoint taken mid-disorder, restores the
// parked session from the checkpoint directory on a fresh server, and
// resumes the same client against it: results, Stats, and drop counts
// must match an uninterrupted run bit for bit, and the reorder
// buffer's in-flight events must survive the restart (no silent
// flush).
func TestSessionRestartFromCheckpoint(t *testing.T) {
	const q = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	const slack = 5
	evs := genStream(40, slack, 42)
	ckAt, crashAt := 20, 28 // checkpoint mid-stream, crash a few events later

	mkServer := func(dir string) *Server {
		return &Server{
			Slack:  slack,
			Linger: time.Minute,
			RuntimeOptions: func() []greta.RuntimeOption {
				return []greta.RuntimeOption{greta.WithCheckpoint(dir, 10)}
			},
		}
	}

	// Reference: identical configuration (checkpointing armed at the
	// same cadence), uninterrupted.
	refAddr := startResumeServer(t, mkServer(t.TempDir()), q)
	wantRes, wantSum := runResumable(t, refAddr, evs, -1, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	dir := t.TempDir()
	addr1 := startResumeServer(t, mkServer(dir), q)
	raw, err := net.Dial("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	f := faultnet.New()
	c := NewClient(f.Conn(raw))
	c.addr = addr1
	defer c.Close()
	sid, err := c.EnableResume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	send := func(e testEvt) error {
		return c.Send(e.typ, e.tm, map[string]float64{"price": e.price}, map[string]string{"company": e.co})
	}
	for _, e := range evs[:ckAt] {
		if err := send(e); err != nil {
			t.Fatal(err)
		}
	}
	// Manual checkpoint with disorder in flight: the snapshot must
	// carry the pending events of the reorder window.
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for _, e := range evs[ckAt:crashAt] {
		if err := send(e); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: sever the connection and abandon the first server
	// entirely — its in-memory session is gone.
	f.Cut()

	// The snapshot really holds the disorder window. Probe a copy of
	// the directory: closing the probe runtime barriers it, which can
	// write a fresh (advanced) generation and poison the restart below.
	probeDir := copyDir(t, dir)
	probe, err := greta.Restore(probeDir)
	if err != nil {
		t.Fatalf("probe restore: %v", err)
	}
	if probe.ReorderPending == 0 {
		t.Fatalf("checkpoint carries no pending reorder events; pick a checkpoint spot mid-disorder")
	}
	if probe.Meta == nil {
		t.Fatalf("checkpoint carries no session meta")
	}
	probe.Close()

	srv2 := mkServer(dir)
	addr2 := startResumeServer(t, srv2)
	restored, err := srv2.RestoreSession(dir)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	if restored != sid {
		t.Fatalf("restored session id %q, want %q", restored, sid)
	}
	c.addr = addr2
	if err := c.Resume(ctx); err != nil {
		t.Fatalf("Resume onto restored server: %v", err)
	}
	for _, e := range evs[crashAt:] {
		if err := send(e); err != nil {
			t.Fatal(err)
		}
	}
	gotRes, _, err := c.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sameResults(t, "restart", gotRes, wantRes)
	sameSummary(t, "restart", c.Summary(), wantSum)
}

// copyDir copies a flat checkpoint directory into a fresh temp dir.
func copyDir(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// waitNoLeaks is the goroutine-leak guard: the count must return to
// the baseline once servers shut down.
func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<17)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestShutdownDrains exercises the graceful drain: live sessions get a
// barrier, a checkpoint attempt, and the terminal done summary; parked
// sessions are drained too; and every server goroutine (readers,
// heartbeats) exits.
func TestShutdownDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := &Server{Slack: 3, Linger: time.Minute, Heartbeat: 5 * time.Millisecond}
	addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 SLIDE 5")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Session 1: live connection, mid-stream when the drain hits.
	c1, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.EnableResume(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c1.Send("Stock", int64(i*2), map[string]float64{"price": 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Round-trip a command so the server has consumed every event
	// before the drain (checkpointing is unarmed; the error is the ack).
	if err := c1.Checkpoint(); err == nil {
		t.Fatal("checkpoint unexpectedly configured")
	}

	// Session 2: parked (connection cut, lingering).
	c2, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.EnableResume(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send("Stock", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.Checkpoint(); err == nil {
		t.Fatal("checkpoint unexpectedly configured")
	}
	c2.Close()
	time.Sleep(20 * time.Millisecond) // let the server park session 2

	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Session 1's client receives the terminal summary.
	var done *wireOut
	for done == nil {
		var o wireOut
		if err := c1.dec.Decode(&o); err != nil {
			t.Fatalf("reading drain output: %v", err)
		}
		if c1.note(&o) {
			continue
		}
		if o.Done {
			done = &o
		}
	}
	if done.Events != 3 {
		t.Errorf("drained summary events = %d, want 3", done.Events)
	}
	if len(done.Stats) != 1 {
		t.Errorf("drained summary stats = %+v, want one statement", done.Stats)
	}
	waitNoLeaks(t, base)
}

// TestSessionProtocolErrors pins the protocol's failure modes.
func TestSessionProtocolErrors(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	t.Run("resume-disabled", func(t *testing.T) {
		srv := &Server{}
		addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+")
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.EnableResume(ctx); err == nil {
			t.Fatal("EnableResume succeeded on a server without Linger")
		}
	})

	t.Run("session-after-events", func(t *testing.T) {
		srv := &Server{Linger: time.Minute}
		addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+")
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Send("Stock", 1, nil, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := c.EnableResume(ctx); err == nil {
			t.Fatal("EnableResume succeeded after events")
		}
	})

	t.Run("resume-unknown-session", func(t *testing.T) {
		srv := &Server{Linger: time.Minute}
		addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+")
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.session = "s999" // forged
		if err := c.Resume(ctx); err == nil {
			t.Fatal("Resume of unknown session succeeded")
		}
	})

	t.Run("linger-expiry", func(t *testing.T) {
		srv := &Server{Linger: 30 * time.Millisecond}
		addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+")
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.EnableResume(ctx); err != nil {
			t.Fatal(err)
		}
		if err := c.Send("Stock", 1, nil, nil); err != nil {
			t.Fatal(err)
		}
		c.conn.Close()
		time.Sleep(150 * time.Millisecond) // park + expire
		if err := c.Resume(ctx); err == nil {
			t.Fatal("Resume succeeded after the linger window expired")
		}
	})

	t.Run("missing-seq", func(t *testing.T) {
		srv := &Server{Linger: time.Minute}
		addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+")
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.EnableResume(ctx); err != nil {
			t.Fatal(err)
		}
		// Bypass Send's stamping: a session event without a seq is a
		// protocol error the server must report.
		if err := c.enc.Encode(WireEvent{Type: "Stock", Time: 1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Checkpoint(); err == nil {
			t.Fatal("expected the missing-seq error to surface")
		} else if want := "missing seq"; !strings.Contains(err.Error(), want) {
			t.Fatalf("error = %v, want %q", err, want)
		}
	})

	t.Run("heartbeat-interleave", func(t *testing.T) {
		srv := &Server{Linger: time.Minute, Heartbeat: 5 * time.Millisecond}
		addr := startResumeServer(t, srv, "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 SLIDE 5")
		c, err := DialContext(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.EnableResume(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(40 * time.Millisecond) // let pings accumulate
		for i := 0; i < 4; i++ {
			if err := c.Send("Stock", int64(i*3), nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		results, events, err := c.Flush()
		if err != nil {
			t.Fatalf("Flush with heartbeats interleaved: %v", err)
		}
		if events != 4 {
			t.Errorf("events = %d, want 4", events)
		}
		if len(results) == 0 {
			t.Error("no results through heartbeat-interleaved session")
		}
	})
}
