// Package netstream provides network ingestion for GRETA runtimes: a
// line-oriented JSON protocol over TCP (or any net.Conn) that feeds a
// multi-query Runtime from remote event producers and pushes window
// results back as they are emitted, tagged with the statement that
// produced them. Statements can be registered and closed mid-stream.
//
// Protocol (newline-delimited JSON):
//
//	client → server   {"type":"Stock","time":17,"attrs":{"price":99.5},"str":{"company":"co01"}}
//	client → server   {"cmd":"register","query":"RETURN COUNT(*) PATTERN ..."}
//	client → server   {"cmd":"close","id":"q1"}   — close one statement, flushing its windows
//	client → server   {"cmd":"checkpoint"}        — write a durable snapshot of the session
//	                                                runtime now (requires RuntimeOptions
//	                                                arming greta.WithCheckpoint)
//	client → server   {"cmd":"flush"}             — close all, receive remaining results, end session
//	server → client   {"result":{"stmt":"q0","group":"...","wid":3,"start":30,"end":60,"values":[42]}}
//	server → client   {"registered":{"id":"q1","query":"..."}}
//	server → client   {"closed":"q1"}
//	server → client   {"error":"..."}             — malformed input, rejected commands, and
//	                                                internal panics are reported, never
//	                                                silently swallowed; clients treat them as
//	                                                session faults (a malformed producer), so
//	                                                one may surface from a later command call
//	server → client   {"warn":"..."}              — non-fatal per-event diagnostics
//	                                                (out-of-order drops, failed checkpoint
//	                                                writes); the session continues
//	server → client   {"checkpointed":true}       — checkpoint acknowledgement; false (after
//	                                                a {"warn":...} line saying why) when the
//	                                                write failed or checkpointing is not
//	                                                configured — the session keeps serving
//	                                                on the previous generation either way
//	server → client   {"error":"timeout"}         — the idle-session or read deadline
//	                                                expired; the server closes the
//	                                                connection after this line
//	server → client   {"done":true,"events":12345,"dropped":0,
//	                   "shared_stmts":4,"shared_graphs":1}
//	                                              — the session's final stats line also
//	                                                reports how far the runtime's shared
//	                                                sub-plan network collapsed the
//	                                                statement set (4 statements served
//	                                                by 1 shared graph)
//
// Events must arrive in non-decreasing time order per connection; an
// optional reorder slack buffers and re-sorts bounded disorder (the
// out-of-order handling the paper delegates upstream, §2). Events that
// still violate order are dropped, counted in "dropped", and reported
// via a {"warn":...} line (warn, not error, so in-flight command
// acknowledgements are not misattributed as failures).
package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/reorder"
)

// WireEvent is the JSON representation of one client→server line: an
// event, or a command (register/close/flush).
type WireEvent struct {
	Cmd   string             `json:"cmd,omitempty"`
	Query string             `json:"query,omitempty"` // register: query text
	ID    string             `json:"id,omitempty"`    // register (optional) / close: statement id
	Type  string             `json:"type,omitempty"`
	Time  int64              `json:"time"`
	Attrs map[string]float64 `json:"attrs,omitempty"`
	Str   map[string]string  `json:"str,omitempty"`
}

// WireResult is the JSON representation of one emitted result, tagged
// with the id of the statement that produced it.
type WireResult struct {
	Stmt   string    `json:"stmt"`
	Group  string    `json:"group"`
	Wid    int64     `json:"wid"`
	Start  int64     `json:"start"`
	End    int64     `json:"end"`
	Values []float64 `json:"values"`
}

// WireRegistered acknowledges a register command.
type WireRegistered struct {
	ID    string `json:"id"`
	Query string `json:"query"`
}

type wireOut struct {
	Result     *WireResult     `json:"result,omitempty"`
	Registered *WireRegistered `json:"registered,omitempty"`
	Closed     string          `json:"closed,omitempty"`
	Done       bool            `json:"done,omitempty"`
	Events     uint64          `json:"events,omitempty"`
	Drop       uint64          `json:"dropped,omitempty"`
	// SharedStmts/SharedGraphs report the session runtime's sub-plan
	// sharing at flush: SharedStmts statements were served by
	// SharedGraphs shared GRETA graphs (the rest ran exclusively).
	SharedStmts  int `json:"shared_stmts,omitempty"`
	SharedGraphs int `json:"shared_graphs,omitempty"`
	// Checkpointed acknowledges a checkpoint command: true on a durable
	// write, false when it degraded (a warn line preceding it says why).
	Checkpointed *bool  `json:"checkpointed,omitempty"`
	Error        string `json:"error,omitempty"`
	Warn         string `json:"warn,omitempty"`
}

// EngineFactory builds a fresh engine per connection.
//
// Deprecated: set Statements (and AllowRegister) instead; NewEngine
// serves single-statement sessions through the Engine shim.
type EngineFactory func() *greta.Engine

// Server serves GRETA sessions: each accepted connection gets its own
// Runtime (its own stream) hosting the configured statements, plus any
// the client registers mid-stream.
type Server struct {
	// NewEngine, when set, supplies each session's initial statement as
	// a single-statement Engine (its Runtime hosts client
	// registrations too, when AllowRegister is set).
	//
	// Deprecated: use Statements.
	NewEngine EngineFactory
	// Statements are registered into every session's Runtime at accept,
	// with ids "q0", "q1", ... in order.
	Statements []*greta.Statement
	// AllowRegister permits {"cmd":"register","query":...}: the query
	// is compiled with CompileOptions and attached mid-stream.
	AllowRegister bool
	// CompileOptions apply to client-registered queries.
	CompileOptions []greta.Option
	// Slack enables the reorder buffer with the given time slack.
	Slack greta.Time
	// RuntimeOptions, when set, supplies construction options for each
	// session's Runtime — typically greta.WithCheckpoint with a
	// per-session directory (sessions are independent runtimes; two
	// sessions sharing one directory would interleave generations).
	// Called once per accepted connection. The server always routes
	// checkpoint-write failures to {"warn":...} lines, overriding any
	// WithCheckpointErrors in the returned slice. Ignored on the
	// deprecated NewEngine path.
	RuntimeOptions func() []greta.RuntimeOption
	// ReadTimeout bounds each read from the connection; IdleTimeout
	// bounds the gap since the last byte of client activity. When either
	// expires the server sends a final {"error":"timeout"} line and
	// closes the connection (open windows are NOT flushed — a stalled
	// client is indistinguishable from a dead one). Zero disables.
	ReadTimeout time.Duration
	IdleTimeout time.Duration
	// WriteTimeout bounds each write of result/acknowledgement lines;
	// a stuck client ends the session instead of blocking the server.
	WriteTimeout time.Duration

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections on ln until it is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// timeoutReader applies the session's read deadlines: each Read must
// finish within ReadTimeout, and must begin within IdleTimeout of the
// last byte of client activity (any byte counts — idleness means a
// silent client, not a slow line).
type timeoutReader struct {
	conn       net.Conn
	read, idle time.Duration
	last       time.Time
}

func (r *timeoutReader) Read(p []byte) (int, error) {
	var dl time.Time
	if r.idle > 0 {
		if r.last.IsZero() {
			r.last = time.Now()
		}
		dl = r.last.Add(r.idle)
	}
	if r.read > 0 {
		if d := time.Now().Add(r.read); dl.IsZero() || d.Before(dl) {
			dl = d
		}
	}
	if !dl.IsZero() {
		_ = r.conn.SetReadDeadline(dl)
	}
	n, err := r.conn.Read(p)
	if n > 0 {
		r.last = time.Now()
	}
	return n, err
}

// deadlineWriter bounds each write so a stuck client cannot block the
// session goroutine forever.
type deadlineWriter struct {
	conn net.Conn
	d    time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.d > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.d))
	}
	return w.conn.Write(p)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ServeConn runs one session over an established connection.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	w := bufio.NewWriter(&deadlineWriter{conn: conn, d: s.WriteTimeout})
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	send := func(o wireOut) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(o)
		_ = w.Flush()
	}
	// An engine-side panic must reach the client as an error line, not
	// a silently dropped connection.
	defer func() {
		if r := recover(); r != nil {
			send(wireOut{Error: fmt.Sprintf("internal error: %v", r)})
		}
	}()

	handles := map[string]*greta.Handle{}
	wire := func(h *greta.Handle) {
		id := h.ID()
		handles[id] = h
		h.OnResult(func(r greta.Result) {
			send(wireOut{Result: &WireResult{
				Stmt:  id,
				Group: r.Group, Wid: r.Wid,
				Start: r.WindowStart, End: r.WindowEnd,
				Values: r.Values,
			}})
		})
	}
	var rt *greta.Runtime
	if s.NewEngine != nil {
		// Legacy factory path: the session runtime is the engine's
		// backing one-statement runtime, so client registrations join it.
		eng := s.NewEngine()
		rt = eng.Runtime()
		wire(eng.Handle())
	} else {
		var opts []greta.RuntimeOption
		if s.RuntimeOptions != nil {
			opts = s.RuntimeOptions()
		}
		// Scheduled checkpoint-write failures degrade to warn lines
		// instead of killing the session: the previous generation stays
		// valid and ingestion continues.
		opts = append(opts, greta.WithCheckpointErrors(func(err error) {
			send(wireOut{Warn: fmt.Sprintf("checkpoint: %v", err)})
		}))
		rt = greta.NewRuntime(opts...)
	}
	defer rt.Close()
	for _, stmt := range s.Statements {
		h, err := rt.Register(stmt)
		if err != nil {
			send(wireOut{Error: fmt.Sprintf("register: %v", err)})
			return
		}
		wire(h)
	}

	var processed, dropped uint64
	feed := func(e *greta.Event) {
		if err := rt.Process(e); err != nil {
			if errors.Is(err, greta.ErrOutOfOrder) {
				// Dropped by design (paper §2); report without failing the
				// session or any in-flight command acknowledgement.
				dropped++
				send(wireOut{Warn: err.Error()})
				return
			}
			send(wireOut{Error: err.Error()})
			return
		}
		processed++
	}
	var buf *reorder.Buffer
	if s.Slack > 0 {
		buf = reorder.New(s.Slack, feed)
		feed = buf.Push
	}
	sc := bufio.NewScanner(&timeoutReader{conn: conn, read: s.ReadTimeout, idle: s.IdleTimeout})
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var nextID uint64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var we WireEvent
		if err := json.Unmarshal(line, &we); err != nil {
			send(wireOut{Error: fmt.Sprintf("bad event: %v", err)})
			continue
		}
		switch we.Cmd {
		case "flush":
			goto done
		case "register":
			if !s.AllowRegister {
				send(wireOut{Error: "register: disabled on this server"})
				continue
			}
			// Lifecycle commands are reorder barriers: events the client
			// sent before the command pass through the slack buffer first,
			// so the registration watermark cuts at the command, and a
			// closing statement's final windows count every prior event.
			if buf != nil {
				buf.Flush()
			}
			stmt, err := greta.Compile(we.Query, s.CompileOptions...)
			if err != nil {
				send(wireOut{Error: fmt.Sprintf("register: %v", err)})
				continue
			}
			var opts []greta.RegisterOption
			if we.ID != "" {
				opts = append(opts, greta.WithID(we.ID))
			}
			h, err := rt.Register(stmt, opts...)
			if err != nil {
				send(wireOut{Error: fmt.Sprintf("register: %v", err)})
				continue
			}
			wire(h)
			send(wireOut{Registered: &WireRegistered{ID: h.ID(), Query: h.Query()}})
			continue
		case "close":
			h, ok := handles[we.ID]
			if !ok {
				send(wireOut{Error: fmt.Sprintf("close: unknown statement %q", we.ID)})
				continue
			}
			if buf != nil { // reorder barrier, as for register
				buf.Flush()
			}
			delete(handles, we.ID)
			if err := h.Close(); err != nil {
				send(wireOut{Error: fmt.Sprintf("close %s: %v", we.ID, err)})
				continue
			}
			send(wireOut{Closed: we.ID})
			continue
		case "checkpoint":
			if buf != nil { // reorder barrier: the snapshot covers every prior event
				buf.Flush()
			}
			ok := true
			if err := rt.Checkpoint(); err != nil {
				// Degrade loudly but keep serving: the previous generation
				// (if any) is still valid and ingestion continues.
				send(wireOut{Warn: fmt.Sprintf("checkpoint: %v", err)})
				ok = false
			}
			send(wireOut{Checkpointed: &ok})
			continue
		case "":
			// An event line.
		default:
			send(wireOut{Error: fmt.Sprintf("unknown command %q", we.Cmd)})
			continue
		}
		if we.Type == "" {
			send(wireOut{Error: "event missing type"})
			continue
		}
		nextID++
		feed(&greta.Event{
			ID:    nextID,
			Type:  greta.Type(we.Type),
			Time:  we.Time,
			Attrs: we.Attrs,
			Str:   we.Str,
		})
	}
	if isTimeout(sc.Err()) {
		// Read/idle deadline expired: report it cleanly and end the
		// session without the done summary — a stalled client's open
		// windows are not flushed on its behalf.
		send(wireOut{Error: "timeout"})
		return
	}
done:
	if buf != nil {
		buf.Flush()
	}
	// Snapshot the sharing topology before Close tears the runtime down.
	rs := rt.Stats()
	_ = rt.Close()
	send(wireOut{Done: true, Events: processed, Drop: dropped + reorderDropped(buf),
		SharedStmts: rs.SharedStatements, SharedGraphs: rs.SharedGraphs})
}

func reorderDropped(buf *reorder.Buffer) uint64 {
	if buf == nil {
		return 0
	}
	return buf.Dropped()
}

// Client streams events to a netstream server and receives results.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	// addr is remembered by DialContext/LazyDial so a lazily-created
	// client can establish its connection on first use.
	addr string
	// pending buffers results that arrive interleaved with command
	// acknowledgements; Flush prepends them.
	pending []WireResult
	// warnings collects non-fatal {"warn":...} diagnostics (e.g.
	// out-of-order drops) observed while reading replies.
	warnings []string
}

// Warnings returns the non-fatal server diagnostics collected so far
// (out-of-order drops and the like). The session outlives them; the
// Flush summary's dropped count reflects the same events.
func (c *Client) Warnings() []string { return c.warnings }

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialContext connects to a server, retrying transient dial failures
// (connection refused/reset, timeouts — e.g. the server has not come
// up yet) with exponential backoff from 10ms to 500ms until ctx is
// done. Non-transient failures return immediately.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	conn, err := dialBackoff(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.addr = addr
	return c, nil
}

// LazyDial returns a client with no connection yet: RegisterContext,
// SendContext, and friends establish it on first use under their
// context, with the DialContext retry/backoff. Useful when the
// producer starts before the server is reachable.
func LazyDial(addr string) *Client { return &Client{addr: addr} }

func dialBackoff(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	backoff := 10 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if !transientDial(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netstream: dial %s: %w (last: %v)", addr, ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// transientDial reports whether a dial error is worth retrying: the
// peer actively refused or dropped the handshake, or it timed out.
// Anything else (bad address, canceled context, ...) is permanent.
func transientDial(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ensure establishes a lazily-dialed client's connection.
func (c *Client) ensure(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	if c.addr == "" {
		return errors.New("netstream: client has no connection and no address")
	}
	conn, err := dialBackoff(ctx, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	return nil
}

// RegisterContext is Register for lazily-dialed clients: it first
// establishes the connection (retrying transient dial failures with
// backoff under ctx), then registers the statement.
func (c *Client) RegisterContext(ctx context.Context, query string) (string, error) {
	if err := c.ensure(ctx); err != nil {
		return "", err
	}
	return c.Register(query)
}

// SendContext is Send for lazily-dialed clients, establishing the
// connection under ctx first if needed.
func (c *Client) SendContext(ctx context.Context, typ string, t int64, attrs map[string]float64, strs map[string]string) error {
	if err := c.ensure(ctx); err != nil {
		return err
	}
	return c.Send(typ, t, attrs, strs)
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// Send streams one event.
func (c *Client) Send(typ string, t int64, attrs map[string]float64, strs map[string]string) error {
	return c.enc.Encode(WireEvent{Type: typ, Time: t, Attrs: attrs, Str: strs})
}

// Register attaches a new statement mid-stream and returns its id.
// Results already in flight are buffered for Flush.
func (c *Client) Register(query string) (string, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "register", Query: query}); err != nil {
		return "", err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return "", err
		}
		switch {
		case o.Warn != "":
			c.warnings = append(c.warnings, o.Warn)
		case o.Error != "":
			return "", fmt.Errorf("server: %s", o.Error)
		case o.Registered != nil:
			return o.Registered.ID, nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return "", fmt.Errorf("server ended session before acknowledging register")
		}
	}
}

// CloseStatement closes one statement mid-stream; its open windows
// flush first (those results are buffered for Flush).
func (c *Client) CloseStatement(id string) error {
	if err := c.enc.Encode(WireEvent{Cmd: "close", ID: id}); err != nil {
		return err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return err
		}
		switch {
		case o.Warn != "":
			c.warnings = append(c.warnings, o.Warn)
		case o.Error != "":
			return fmt.Errorf("server: %s", o.Error)
		case o.Closed == id:
			return nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return fmt.Errorf("server ended session before acknowledging close")
		}
	}
}

// Checkpoint asks the server to durably snapshot this session's
// runtime now (the server must arm checkpointing via RuntimeOptions).
// A degraded checkpoint — write failure or no configuration — returns
// an error carrying the server's diagnostic; the session itself keeps
// serving, so the caller may continue sending events either way.
func (c *Client) Checkpoint() error {
	if err := c.enc.Encode(WireEvent{Cmd: "checkpoint"}); err != nil {
		return err
	}
	var lastWarn string
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return err
		}
		switch {
		case o.Warn != "":
			c.warnings = append(c.warnings, o.Warn)
			lastWarn = o.Warn
		case o.Error != "":
			return fmt.Errorf("server: %s", o.Error)
		case o.Checkpointed != nil:
			if *o.Checkpointed {
				return nil
			}
			if lastWarn != "" {
				return fmt.Errorf("server: %s", lastWarn)
			}
			return errors.New("server: checkpoint failed")
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return errors.New("server ended session before acknowledging checkpoint")
		}
	}
}

// Flush ends the stream and collects all remaining results plus the
// session summary.
func (c *Client) Flush() ([]WireResult, uint64, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "flush"}); err != nil {
		return nil, 0, err
	}
	results := c.pending
	c.pending = nil
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return results, 0, err
		}
		if o.Warn != "" {
			c.warnings = append(c.warnings, o.Warn)
			continue
		}
		if o.Error != "" {
			return results, 0, fmt.Errorf("server: %s", o.Error)
		}
		if o.Result != nil {
			results = append(results, *o.Result)
		}
		if o.Done {
			return results, o.Events, nil
		}
	}
}

// Close closes the connection (a no-op on a lazily-dialed client that
// never connected).
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
