// Package netstream provides network ingestion for GRETA runtimes: a
// line-oriented JSON protocol over TCP (or any net.Conn) that feeds a
// multi-query Runtime from remote event producers and pushes window
// results back as they are emitted, tagged with the statement that
// produced them. Statements can be registered and closed mid-stream.
//
// Protocol (newline-delimited JSON):
//
//	client → server   {"type":"Stock","time":17,"attrs":{"price":99.5},"str":{"company":"co01"}}
//	client → server   {"cmd":"register","query":"RETURN COUNT(*) PATTERN ..."}
//	client → server   {"cmd":"close","id":"q1"}   — close one statement, flushing its windows
//	client → server   {"cmd":"flush"}             — close all, receive remaining results, end session
//	server → client   {"result":{"stmt":"q0","group":"...","wid":3,"start":30,"end":60,"values":[42]}}
//	server → client   {"registered":{"id":"q1","query":"..."}}
//	server → client   {"closed":"q1"}
//	server → client   {"error":"..."}             — malformed input, rejected commands, and
//	                                                internal panics are reported, never
//	                                                silently swallowed; clients treat them as
//	                                                session faults (a malformed producer), so
//	                                                one may surface from a later command call
//	server → client   {"warn":"..."}              — non-fatal per-event diagnostics
//	                                                (out-of-order drops); the session continues
//	server → client   {"done":true,"events":12345,"dropped":0,
//	                   "shared_stmts":4,"shared_graphs":1}
//	                                              — the session's final stats line also
//	                                                reports how far the runtime's shared
//	                                                sub-plan network collapsed the
//	                                                statement set (4 statements served
//	                                                by 1 shared graph)
//
// Events must arrive in non-decreasing time order per connection; an
// optional reorder slack buffers and re-sorts bounded disorder (the
// out-of-order handling the paper delegates upstream, §2). Events that
// still violate order are dropped, counted in "dropped", and reported
// via a {"warn":...} line (warn, not error, so in-flight command
// acknowledgements are not misattributed as failures).
package netstream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/reorder"
)

// WireEvent is the JSON representation of one client→server line: an
// event, or a command (register/close/flush).
type WireEvent struct {
	Cmd   string             `json:"cmd,omitempty"`
	Query string             `json:"query,omitempty"` // register: query text
	ID    string             `json:"id,omitempty"`    // register (optional) / close: statement id
	Type  string             `json:"type,omitempty"`
	Time  int64              `json:"time"`
	Attrs map[string]float64 `json:"attrs,omitempty"`
	Str   map[string]string  `json:"str,omitempty"`
}

// WireResult is the JSON representation of one emitted result, tagged
// with the id of the statement that produced it.
type WireResult struct {
	Stmt   string    `json:"stmt"`
	Group  string    `json:"group"`
	Wid    int64     `json:"wid"`
	Start  int64     `json:"start"`
	End    int64     `json:"end"`
	Values []float64 `json:"values"`
}

// WireRegistered acknowledges a register command.
type WireRegistered struct {
	ID    string `json:"id"`
	Query string `json:"query"`
}

type wireOut struct {
	Result     *WireResult     `json:"result,omitempty"`
	Registered *WireRegistered `json:"registered,omitempty"`
	Closed     string          `json:"closed,omitempty"`
	Done       bool            `json:"done,omitempty"`
	Events     uint64          `json:"events,omitempty"`
	Drop       uint64          `json:"dropped,omitempty"`
	// SharedStmts/SharedGraphs report the session runtime's sub-plan
	// sharing at flush: SharedStmts statements were served by
	// SharedGraphs shared GRETA graphs (the rest ran exclusively).
	SharedStmts  int    `json:"shared_stmts,omitempty"`
	SharedGraphs int    `json:"shared_graphs,omitempty"`
	Error        string `json:"error,omitempty"`
	Warn         string `json:"warn,omitempty"`
}

// EngineFactory builds a fresh engine per connection.
//
// Deprecated: set Statements (and AllowRegister) instead; NewEngine
// serves single-statement sessions through the Engine shim.
type EngineFactory func() *greta.Engine

// Server serves GRETA sessions: each accepted connection gets its own
// Runtime (its own stream) hosting the configured statements, plus any
// the client registers mid-stream.
type Server struct {
	// NewEngine, when set, supplies each session's initial statement as
	// a single-statement Engine (its Runtime hosts client
	// registrations too, when AllowRegister is set).
	//
	// Deprecated: use Statements.
	NewEngine EngineFactory
	// Statements are registered into every session's Runtime at accept,
	// with ids "q0", "q1", ... in order.
	Statements []*greta.Statement
	// AllowRegister permits {"cmd":"register","query":...}: the query
	// is compiled with CompileOptions and attached mid-stream.
	AllowRegister bool
	// CompileOptions apply to client-registered queries.
	CompileOptions []greta.Option
	// Slack enables the reorder buffer with the given time slack.
	Slack greta.Time

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections on ln until it is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// ServeConn runs one session over an established connection.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	send := func(o wireOut) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(o)
		_ = w.Flush()
	}
	// An engine-side panic must reach the client as an error line, not
	// a silently dropped connection.
	defer func() {
		if r := recover(); r != nil {
			send(wireOut{Error: fmt.Sprintf("internal error: %v", r)})
		}
	}()

	handles := map[string]*greta.Handle{}
	wire := func(h *greta.Handle) {
		id := h.ID()
		handles[id] = h
		h.OnResult(func(r greta.Result) {
			send(wireOut{Result: &WireResult{
				Stmt:  id,
				Group: r.Group, Wid: r.Wid,
				Start: r.WindowStart, End: r.WindowEnd,
				Values: r.Values,
			}})
		})
	}
	var rt *greta.Runtime
	if s.NewEngine != nil {
		// Legacy factory path: the session runtime is the engine's
		// backing one-statement runtime, so client registrations join it.
		eng := s.NewEngine()
		rt = eng.Runtime()
		wire(eng.Handle())
	} else {
		rt = greta.NewRuntime()
	}
	defer rt.Close()
	for _, stmt := range s.Statements {
		h, err := rt.Register(stmt)
		if err != nil {
			send(wireOut{Error: fmt.Sprintf("register: %v", err)})
			return
		}
		wire(h)
	}

	var processed, dropped uint64
	feed := func(e *greta.Event) {
		if err := rt.Process(e); err != nil {
			if errors.Is(err, greta.ErrOutOfOrder) {
				// Dropped by design (paper §2); report without failing the
				// session or any in-flight command acknowledgement.
				dropped++
				send(wireOut{Warn: err.Error()})
				return
			}
			send(wireOut{Error: err.Error()})
			return
		}
		processed++
	}
	var buf *reorder.Buffer
	if s.Slack > 0 {
		buf = reorder.New(s.Slack, feed)
		feed = buf.Push
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var nextID uint64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var we WireEvent
		if err := json.Unmarshal(line, &we); err != nil {
			send(wireOut{Error: fmt.Sprintf("bad event: %v", err)})
			continue
		}
		switch we.Cmd {
		case "flush":
			goto done
		case "register":
			if !s.AllowRegister {
				send(wireOut{Error: "register: disabled on this server"})
				continue
			}
			// Lifecycle commands are reorder barriers: events the client
			// sent before the command pass through the slack buffer first,
			// so the registration watermark cuts at the command, and a
			// closing statement's final windows count every prior event.
			if buf != nil {
				buf.Flush()
			}
			stmt, err := greta.Compile(we.Query, s.CompileOptions...)
			if err != nil {
				send(wireOut{Error: fmt.Sprintf("register: %v", err)})
				continue
			}
			var opts []greta.RegisterOption
			if we.ID != "" {
				opts = append(opts, greta.WithID(we.ID))
			}
			h, err := rt.Register(stmt, opts...)
			if err != nil {
				send(wireOut{Error: fmt.Sprintf("register: %v", err)})
				continue
			}
			wire(h)
			send(wireOut{Registered: &WireRegistered{ID: h.ID(), Query: h.Query()}})
			continue
		case "close":
			h, ok := handles[we.ID]
			if !ok {
				send(wireOut{Error: fmt.Sprintf("close: unknown statement %q", we.ID)})
				continue
			}
			if buf != nil { // reorder barrier, as for register
				buf.Flush()
			}
			delete(handles, we.ID)
			if err := h.Close(); err != nil {
				send(wireOut{Error: fmt.Sprintf("close %s: %v", we.ID, err)})
				continue
			}
			send(wireOut{Closed: we.ID})
			continue
		case "":
			// An event line.
		default:
			send(wireOut{Error: fmt.Sprintf("unknown command %q", we.Cmd)})
			continue
		}
		if we.Type == "" {
			send(wireOut{Error: "event missing type"})
			continue
		}
		nextID++
		feed(&greta.Event{
			ID:    nextID,
			Type:  greta.Type(we.Type),
			Time:  we.Time,
			Attrs: we.Attrs,
			Str:   we.Str,
		})
	}
done:
	if buf != nil {
		buf.Flush()
	}
	// Snapshot the sharing topology before Close tears the runtime down.
	rs := rt.Stats()
	_ = rt.Close()
	send(wireOut{Done: true, Events: processed, Drop: dropped + reorderDropped(buf),
		SharedStmts: rs.SharedStatements, SharedGraphs: rs.SharedGraphs})
}

func reorderDropped(buf *reorder.Buffer) uint64 {
	if buf == nil {
		return 0
	}
	return buf.Dropped()
}

// Client streams events to a netstream server and receives results.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	// pending buffers results that arrive interleaved with command
	// acknowledgements; Flush prepends them.
	pending []WireResult
	// warnings collects non-fatal {"warn":...} diagnostics (e.g.
	// out-of-order drops) observed while reading replies.
	warnings []string
}

// Warnings returns the non-fatal server diagnostics collected so far
// (out-of-order drops and the like). The session outlives them; the
// Flush summary's dropped count reflects the same events.
func (c *Client) Warnings() []string { return c.warnings }

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// Send streams one event.
func (c *Client) Send(typ string, t int64, attrs map[string]float64, strs map[string]string) error {
	return c.enc.Encode(WireEvent{Type: typ, Time: t, Attrs: attrs, Str: strs})
}

// Register attaches a new statement mid-stream and returns its id.
// Results already in flight are buffered for Flush.
func (c *Client) Register(query string) (string, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "register", Query: query}); err != nil {
		return "", err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return "", err
		}
		switch {
		case o.Warn != "":
			c.warnings = append(c.warnings, o.Warn)
		case o.Error != "":
			return "", fmt.Errorf("server: %s", o.Error)
		case o.Registered != nil:
			return o.Registered.ID, nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return "", fmt.Errorf("server ended session before acknowledging register")
		}
	}
}

// CloseStatement closes one statement mid-stream; its open windows
// flush first (those results are buffered for Flush).
func (c *Client) CloseStatement(id string) error {
	if err := c.enc.Encode(WireEvent{Cmd: "close", ID: id}); err != nil {
		return err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return err
		}
		switch {
		case o.Warn != "":
			c.warnings = append(c.warnings, o.Warn)
		case o.Error != "":
			return fmt.Errorf("server: %s", o.Error)
		case o.Closed == id:
			return nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return fmt.Errorf("server ended session before acknowledging close")
		}
	}
}

// Flush ends the stream and collects all remaining results plus the
// session summary.
func (c *Client) Flush() ([]WireResult, uint64, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "flush"}); err != nil {
		return nil, 0, err
	}
	results := c.pending
	c.pending = nil
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return results, 0, err
		}
		if o.Warn != "" {
			c.warnings = append(c.warnings, o.Warn)
			continue
		}
		if o.Error != "" {
			return results, 0, fmt.Errorf("server: %s", o.Error)
		}
		if o.Result != nil {
			results = append(results, *o.Result)
		}
		if o.Done {
			return results, o.Events, nil
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
