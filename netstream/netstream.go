// Package netstream provides network ingestion for GRETA runtimes: a
// line-oriented JSON protocol over TCP (or any net.Conn) that feeds a
// multi-query Runtime from remote event producers and pushes window
// results back as they are emitted, tagged with the statement that
// produced them. Statements can be registered and closed mid-stream,
// and sessions can survive connection loss: a client that enabled
// resumability reconnects, proves how far it got, and the stream
// continues exactly once from where it broke.
//
// Protocol (newline-delimited JSON):
//
//	client → server   {"type":"Stock","time":17,"attrs":{"price":99.5},"str":{"company":"co01"}}
//	client → server   {"cmd":"batch","type":"Stock","times":[17,18],
//	                   "cols":{"price":[99.5,98.0]},"scols":{"company":["co01","co01"]}}
//	                                              — a columnar batch: one timestamp per row
//	                                                plus per-attribute value arrays, decoded
//	                                                straight into the runtime's columnar
//	                                                ingest path (Runtime.ProcessBatch). Rows
//	                                                must be in non-decreasing time order.
//	                                                In a resumable session the frame carries
//	                                                one frame-level "seq": resume dedup skips
//	                                                whole duplicate frames, so batches stay
//	                                                columnar end to end
//	client → server   {"cmd":"register","query":"RETURN COUNT(*) PATTERN ..."}
//	client → server   {"cmd":"close","id":"q1"}   — close one statement, flushing its windows
//	client → server   {"cmd":"checkpoint"}        — write a durable snapshot of the session
//	                                                runtime now (requires RuntimeOptions
//	                                                arming greta.WithCheckpoint)
//	client → server   {"cmd":"session"}           — enable resumability; must precede every
//	                                                event (requires Server.Linger > 0)
//	client → server   {"cmd":"resume","session":"s0","recv":41}
//	                                              — first line of a reconnect: attach to the
//	                                                lingering session, having consumed server
//	                                                output through seq 41
//	client → server   {"cmd":"flush"}             — close all, receive remaining results, end session
//	server → client   {"session":{"id":"s0","linger_ms":30000}}
//	                                              — resumability acknowledged; events must now
//	                                                carry contiguous 1-based "seq" numbers
//	server → client   {"resumed":{"id":"s0","seq":12}}
//	                                              — reconnect acknowledged: the server applied
//	                                                events through seq 12; re-send everything
//	                                                after it. "rebase":true means the client
//	                                                fell behind the replay window and the
//	                                                retained results are re-delivered in full
//	                                                (discard previously collected ones)
//	server → client   {"result":{"stmt":"q0","group":"...","wid":3,"start":30,"end":60,"values":[42]},"seq":7}
//	                                              — results in a resumable session carry
//	                                                server-side seqs; duplicates replayed
//	                                                after a resume are skipped by seq
//	server → client   {"registered":{"id":"q1","query":"..."}}
//	server → client   {"closed":"q1"}
//	server → client   {"ping":3}                  — heartbeat (Server.Heartbeat); clients
//	                                                ignore it, dead peers fail the write
//	server → client   {"error":"..."}             — malformed input, rejected commands, and
//	                                                internal panics are reported, never
//	                                                silently swallowed; clients treat them as
//	                                                session faults (a malformed producer), so
//	                                                one may surface from a later command call
//	server → client   {"warn":"..."}              — non-fatal per-event diagnostics
//	                                                (out-of-order drops, failed checkpoint
//	                                                writes); the session continues
//	server → client   {"checkpointed":true}       — checkpoint acknowledgement; false (after
//	                                                a {"warn":...} line saying why) when the
//	                                                write failed or checkpointing is not
//	                                                configured — the session keeps serving
//	                                                on the previous generation either way
//	server → client   {"error":"timeout"}         — the idle-session or read deadline
//	                                                expired; the server closes the
//	                                                connection after this line (a resumable
//	                                                session lingers for Server.Linger)
//	server → client   {"done":true,"events":12345,"dropped":0,
//	                   "shared_stmts":4,"shared_graphs":1,"stats":{"q0":{...}}}
//	                                              — the session's final summary also carries
//	                                                per-statement engine Stats and how far
//	                                                the shared sub-plan network collapsed
//	                                                the statement set
//
// Events must arrive in non-decreasing time order per connection; an
// optional reorder slack buffers and re-sorts bounded disorder (the
// out-of-order handling the paper delegates upstream, §2). Events that
// still violate order are dropped, counted in "dropped", and reported
// via a {"warn":...} line (warn, not error, so in-flight command
// acknowledgements are not misattributed as failures).
//
// # Session resilience
//
// With Server.Linger > 0 a client may send {"cmd":"session"} before
// its first event; from then on every event carries a contiguous
// client-side sequence number and every durable server line (results)
// carries a server-side one. When the connection drops, the server
// parks the session — Runtime, statement handles, reorder window,
// counters — for the linger duration instead of tearing it down. The
// client reconnects (Client.Resume redials with the same backoff as
// DialContext), identifies the session, and reports the last server
// seq it consumed; the server replays the retained output lines after
// it and answers with the last event seq it applied, which the client
// uses to re-send the unacknowledged tail of its bounded send buffer.
// Duplicate events are skipped by seq on the server, duplicate results
// by seq on the client: exactly-once delivery over an at-least-once
// wire. If the server process itself restarted, RestoreSession
// rebuilds the parked session from its checkpoint directory — the
// snapshot embeds the session id and cursors (WithCheckpointMeta) and
// rehydrates the reorder buffer's in-flight events — and the same
// client resume proceeds against the recovered state.
//
// # Shard links
//
// With Server.AllowShard a resumable session can flip into shard mode
// ({"cmd":"shard"}): instead of feeding its own Runtime, the
// connection hosts cluster worker slots driven by a remote coordinator
// (see the cluster package). Shard frames — unit registration/close
// fan-out ("sreg"/"sclose"), per-statement window barriers
// ("barrier"), end of stream ("eos"), and slot migration
// ("handoff"/"adopt") — ride the same client-seq discipline as events,
// and the shard's partial windows, barrier acks, and unit stats travel
// back as durable seq-numbered lines, so a dropped link replays its
// unacked tail in both directions and the coordinator's merge applies
// every frame exactly once. Events arrive with coordinator-computed
// route hashes (shards never rehash), normally packed in columnar
// batch frames.
package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/greta-cep/greta"
)

// WireEvent is the JSON representation of one client→server line: an
// event, or a command (register/close/checkpoint/session/resume/flush).
type WireEvent struct {
	Cmd   string `json:"cmd,omitempty"`
	Query string `json:"query,omitempty"` // register: query text
	ID    string `json:"id,omitempty"`    // register (optional) / close: statement id
	// Seq is the client-side event sequence number (contiguous from 1)
	// in a resumable session; Session and Recv identify a resume.
	Seq     uint64             `json:"seq,omitempty"`
	Session string             `json:"session,omitempty"`
	Recv    uint64             `json:"recv,omitempty"`
	Type    string             `json:"type,omitempty"`
	Time    int64              `json:"time"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
	Str     map[string]string  `json:"str,omitempty"`
	// Times/Cols/SCols carry a {"cmd":"batch"} frame: one timestamp per
	// row plus per-attribute value arrays (every array len(Times) long),
	// decoded server-side straight into a columnar event batch.
	Times []int64              `json:"times,omitempty"`
	Cols  map[string][]float64 `json:"cols,omitempty"`
	SCols map[string][]string  `json:"scols,omitempty"`
	// Shard-link extensions (Server.AllowShard; see the cluster
	// package): a coordinator drives shard sessions with dedicated
	// commands — "shard" (handshake: Count is the cluster's worker-slot
	// modulus, Workers the slots hosted here), "sreg"/"sclose" (unit
	// fan-out), "barrier" (window release), "eos" (end of stream),
	// "handoff"/"adopt" (slot migration) — and its event/batch lines
	// carry pre-computed route hashes so shards never rehash.
	Count   int   `json:"count,omitempty"`
	Workers []int `json:"workers,omitempty"`
	SI      int   `json:"si,omitempty"`    // sreg/sclose/barrier: unit index
	GI      int   `json:"gi,omitempty"`    // sreg: route group; batch: frame-level route group
	Exact   bool  `json:"exact,omitempty"` // sreg: exact arithmetic mode
	Force   bool  `json:"force,omitempty"` // sreg: forced vertex scan
	Hi      int64 `json:"hi,omitempty"`    // barrier: highest window id closed
	// RG/RH route a single event line: targeted route groups and their
	// FNV-1a hashes (hex). A batch frame uses GI+RH (one hash per row,
	// all rows in group GI) or RGs/RHs (per-row group lists) instead.
	RG    []int             `json:"rg,omitempty"`
	RH    []string          `json:"rh,omitempty"`
	RGs   [][]int           `json:"rgs,omitempty"`
	RHs   [][]string        `json:"rhs,omitempty"`
	Blobs map[string]string `json:"blobs,omitempty"` // adopt: worker slot → base64 snapshot
	EvID  uint64            `json:"evid,omitempty"`  // adopt: donor session's event-ID counter
}

// WireResult is the JSON representation of one emitted result, tagged
// with the id of the statement that produced it.
type WireResult struct {
	Stmt   string    `json:"stmt"`
	Group  string    `json:"group"`
	Wid    int64     `json:"wid"`
	Start  int64     `json:"start"`
	End    int64     `json:"end"`
	Values []float64 `json:"values"`
}

// WireRegistered acknowledges a register command.
type WireRegistered struct {
	ID    string `json:"id"`
	Query string `json:"query"`
}

// WireSession acknowledges a session command: the server-issued
// session id and how long the session lingers after a disconnect.
type WireSession struct {
	ID       string `json:"id"`
	LingerMS int64  `json:"linger_ms"`
}

// WireResumed acknowledges a resume: Seq is the last event sequence
// the server applied (re-send everything after it). Rebase means the
// client's consumed-output cursor fell behind the server's replay
// window: previously collected results must be discarded, the full
// retained set is re-delivered with fresh seqs.
type WireResumed struct {
	ID     string `json:"id"`
	Seq    uint64 `json:"seq"`
	Rebase bool   `json:"rebase,omitempty"`
}

// WireDone is the session summary delivered with the final
// {"done":true} line and retained by the client (Client.Summary).
type WireDone struct {
	Events       uint64
	Dropped      uint64
	SharedStmts  int
	SharedGraphs int
	Stats        map[string]greta.Stats
}

// WireSessStats is the reply to {"cmd":"stats"}: a live snapshot of
// the session's resilience cursors and its runtime's observability
// counters, cheap enough to poll mid-stream (no barrier, no flush).
type WireSessStats struct {
	// Session is the server-issued id ("" for a non-resumable session).
	Session   string `json:"session,omitempty"`
	Processed uint64 `json:"processed"`
	Dropped   uint64 `json:"dropped"`
	// LastSeq/OutSeq are the resume cursors: the last client event seq
	// applied and the newest durable output seq emitted.
	LastSeq uint64 `json:"last_seq,omitempty"`
	OutSeq  uint64 `json:"out_seq,omitempty"`
	// Resumes counts re-attaches after connection loss; Pings counts
	// heartbeats sent on the current session.
	Resumes uint64 `json:"resumes,omitempty"`
	Pings   uint64 `json:"pings,omitempty"`
	// Retained is the send-ring occupancy: durable output lines held
	// for resume replay, bounded by ResumeWindow.
	Retained     int `json:"retained"`
	ResumeWindow int `json:"resume_window"`
	Statements   int `json:"statements"`
	// Watermark/EventTimeMax/WatermarkLag mirror the runtime's live
	// gauges (-1 before the first event).
	Watermark      int64  `json:"watermark"`
	EventTimeMax   int64  `json:"event_time_max"`
	WatermarkLag   int64  `json:"watermark_lag,omitempty"`
	ReorderPending int    `json:"reorder_pending,omitempty"`
	ReorderDropped uint64 `json:"reorder_dropped,omitempty"`
	// Checkpoint durability: successful writes and the wall-clock age
	// of the newest snapshot in milliseconds (0 when none).
	CheckpointWrites uint64 `json:"checkpoint_writes,omitempty"`
	CheckpointAgeMS  int64  `json:"checkpoint_age_ms,omitempty"`
}

type wireOut struct {
	Result     *WireResult     `json:"result,omitempty"`
	Registered *WireRegistered `json:"registered,omitempty"`
	Closed     string          `json:"closed,omitempty"`
	Session    *WireSession    `json:"session,omitempty"`
	Resumed    *WireResumed    `json:"resumed,omitempty"`
	// Seq numbers durable lines (results) in a resumable session so a
	// resuming client can dedup replays; Ping is the heartbeat counter.
	Seq  uint64 `json:"seq,omitempty"`
	Ping uint64 `json:"ping,omitempty"`
	Done bool   `json:"done,omitempty"`
	// Events/Drop/shared/Stats ride on the done line.
	Events uint64 `json:"events,omitempty"`
	Drop   uint64 `json:"dropped,omitempty"`
	// SharedStmts/SharedGraphs report the session runtime's sub-plan
	// sharing at flush: SharedStmts statements were served by
	// SharedGraphs shared GRETA graphs (the rest ran exclusively).
	SharedStmts  int                    `json:"shared_stmts,omitempty"`
	SharedGraphs int                    `json:"shared_graphs,omitempty"`
	Stats        map[string]greta.Stats `json:"stats,omitempty"`
	// Checkpointed acknowledges a checkpoint command: true on a durable
	// write, false when it degraded (a warn line preceding it says why).
	Checkpointed *bool `json:"checkpointed,omitempty"`
	// SessStats replies to {"cmd":"stats"}.
	SessStats *WireSessStats `json:"sess_stats,omitempty"`
	Error     string         `json:"error,omitempty"`
	Warn      string         `json:"warn,omitempty"`
	// Shard-session lines (all durable): partial windows, barrier acks,
	// per-unit stats, handshake/adopt acknowledgements, handoff blobs.
	Partial   *WirePartial   `json:"partial,omitempty"`
	Ack       *WireAck       `json:"ack,omitempty"`
	UnitStats *WireUnitStats `json:"unit_stats,omitempty"`
	Shard     *WireShardInfo `json:"shard,omitempty"`
	Handoff   *WireHandoff   `json:"handoff,omitempty"`
}

// EngineFactory builds a fresh engine per connection.
//
// Deprecated: set Statements (and AllowRegister) instead; NewEngine
// serves single-statement sessions through the Engine shim.
type EngineFactory func() *greta.Engine

// defaultResumeWindow bounds the durable output lines a session
// retains for resume replay when ResumeWindow is unset.
const defaultResumeWindow = 4096

// Server serves GRETA sessions: each accepted connection gets its own
// Runtime (its own stream) hosting the configured statements, plus any
// the client registers mid-stream.
type Server struct {
	// NewEngine, when set, supplies each session's initial statement as
	// a single-statement Engine (its Runtime hosts client
	// registrations too, when AllowRegister is set).
	//
	// Deprecated: use Statements.
	NewEngine EngineFactory
	// Statements are registered into every session's Runtime at accept,
	// with ids "q0", "q1", ... in order.
	Statements []*greta.Statement
	// AllowRegister permits {"cmd":"register","query":...}: the query
	// is compiled with CompileOptions and attached mid-stream.
	AllowRegister bool
	// AllowShard permits shard-session commands ({"cmd":"shard"} and
	// the frames that follow): the connection hosts cluster worker
	// slots driven by a remote coordinator (see the cluster package).
	// Shard sessions require resumability (Linger > 0) — their links
	// heal through the same seq/replay machinery as ordinary sessions.
	AllowShard bool
	// CompileOptions apply to client-registered queries.
	CompileOptions []greta.Option
	// Slack enables the reorder buffer with the given time slack.
	Slack greta.Time
	// RuntimeOptions, when set, supplies construction options for each
	// session's Runtime — typically greta.WithCheckpoint with a
	// per-session directory (sessions are independent runtimes; two
	// sessions sharing one directory would interleave generations).
	// Called once per accepted connection. The server always routes
	// checkpoint-write failures to {"warn":...} lines, overriding any
	// WithCheckpointErrors in the returned slice. Ignored on the
	// deprecated NewEngine path.
	RuntimeOptions func() []greta.RuntimeOption
	// ReadTimeout bounds each read from the connection; IdleTimeout
	// bounds the gap since the last byte of client activity. When either
	// expires the server sends a final {"error":"timeout"} line and
	// closes the connection (open windows are NOT flushed — a stalled
	// client is indistinguishable from a dead one; a resumable session
	// lingers instead of tearing down). Zero disables.
	ReadTimeout time.Duration
	IdleTimeout time.Duration
	// WriteTimeout bounds each write of result/acknowledgement lines;
	// a stuck client ends the session instead of blocking the server.
	WriteTimeout time.Duration
	// Linger enables resumable sessions: after a disconnect the session
	// state (runtime, handles, reorder window, cursors) is retained
	// this long awaiting a resume before being torn down. Zero rejects
	// {"cmd":"session"}.
	Linger time.Duration
	// Heartbeat, when positive, sends {"ping":n} lines at this interval
	// on resumable sessions so a dead peer fails the write path well
	// before ReadTimeout notices the silence.
	Heartbeat time.Duration
	// ResumeWindow bounds the durable output lines retained per session
	// for resume replay (default 4096). A client whose consumed cursor
	// falls behind the window is rebased: the retained results are
	// re-delivered in full.
	ResumeWindow int
	// MaxLine bounds one inbound frame's size in bytes (default 1 MiB).
	// Shard servers raise it: an adopt frame carries whole slot
	// snapshots in one line.
	MaxLine int
	// TraceHook, when set, receives lifecycle trace events from every
	// session: the runtime's own kinds (statement register/close,
	// checkpoint begin/commit/fail) plus TraceSessionResume on each
	// re-attach, with TraceEvent.Session carrying the session id. It
	// overrides any WithTraceHook in RuntimeOptions. The hook fires on
	// serving paths with session (and possibly runtime) locks held — it
	// must return quickly and must not call back into the server.
	TraceHook func(greta.TraceEvent)

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	nextSess uint64
	sessions map[string]*session   // resumable sessions by id
	all      map[*session]struct{} // every live session (Shutdown drain targets)
	conns    map[net.Conn]struct{} // every live connection (Shutdown force-close)
	wg       sync.WaitGroup
}

// Serve accepts connections on ln until it is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops accepting connections. Established sessions keep
// running; use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, then for
// every live session barriers the reorder buffer, checkpoints the
// runtime (when armed — degraded writes surface as warn lines), and
// sends the terminal {"done":...} summary before closing the
// connection. Parked resumable sessions are drained the same way
// (their summaries have no peer to reach, but their checkpoints do).
// Remaining connections without a session are closed, and Shutdown
// waits for every connection handler and heartbeat to exit, or until
// ctx is done.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	sessions := make([]*session, 0, len(s.all))
	for sess := range s.all {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.drain()
	}
	// Connections that never became a session (or raced session
	// teardown) are cut; their readers exit on the closed conn.
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) resumeWindow() int {
	if s.ResumeWindow > 0 {
		return s.ResumeWindow
	}
	return defaultResumeWindow
}

// addSession registers a resumable session and issues its id (or
// validates a restored one). Inner lock: callers may hold sess.mu.
func (s *Server) addSession(sess *session, id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", errors.New("server shutting down")
	}
	if s.sessions == nil {
		s.sessions = map[string]*session{}
	}
	if id == "" {
		for {
			id = fmt.Sprintf("s%d", s.nextSess)
			s.nextSess++
			if _, taken := s.sessions[id]; !taken {
				break
			}
		}
	} else if _, taken := s.sessions[id]; taken {
		return "", fmt.Errorf("session %q already live", id)
	}
	s.sessions[id] = sess
	if s.all == nil {
		s.all = map[*session]struct{}{}
	}
	s.all[sess] = struct{}{}
	return id, nil
}

// trackSession registers a plain (non-resumable) session for Shutdown
// drains. Fails once the server is draining.
func (s *Server) trackSession(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.all == nil {
		s.all = map[*session]struct{}{}
	}
	s.all[sess] = struct{}{}
	return true
}

// removeSession forgets a torn-down session. Inner lock: callers hold
// sess.mu.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.all, sess)
	if sess.id != "" {
		delete(s.sessions, sess.id)
	}
}

func (s *Server) lookupSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// timeoutReader applies the session's read deadlines: each Read must
// finish within ReadTimeout, and must begin within IdleTimeout of the
// last byte of client activity (any byte counts — idleness means a
// silent client, not a slow line).
type timeoutReader struct {
	conn       net.Conn
	read, idle time.Duration
	last       time.Time
}

func (r *timeoutReader) Read(p []byte) (int, error) {
	var dl time.Time
	if r.idle > 0 {
		if r.last.IsZero() {
			r.last = time.Now()
		}
		dl = r.last.Add(r.idle)
	}
	if r.read > 0 {
		if d := time.Now().Add(r.read); dl.IsZero() || d.Before(dl) {
			dl = d
		}
	}
	if !dl.IsZero() {
		_ = r.conn.SetReadDeadline(dl)
	}
	n, err := r.conn.Read(p)
	if n > 0 {
		r.last = time.Now()
	}
	return n, err
}

// deadlineWriter bounds each write so a stuck client cannot block the
// session goroutine forever.
type deadlineWriter struct {
	conn net.Conn
	d    time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.d > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.d))
	}
	return w.conn.Write(p)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// outLine is one retained durable output line (marshalled, newline
// included) awaiting possible resume replay.
type outLine struct {
	seq  uint64
	data []byte
}

// sessionMeta is the opaque blob embedded in each checkpoint via
// WithCheckpointMeta: the session identity and cursors that must stay
// atomic with the engine state they describe.
type sessionMeta struct {
	ID        string `json:"id"`
	LastSeq   uint64 `json:"last_seq"`
	OutSeq    uint64 `json:"out_seq"`
	Processed uint64 `json:"processed"`
	Dropped   uint64 `json:"dropped"`
	// V distinguishes meta generations: v2 adds the engine event-id
	// cursor and mid-frame progress (batch frames over resumable
	// sessions). A v1 meta implies ids equal seqs.
	V int `json:"v,omitempty"`
	// EvID is the id of the last engine event whose application the
	// snapshot contains; FrameRows counts how many of those belong to a
	// batch frame whose seq is NOT yet covered by LastSeq (a snapshot
	// that fired mid-frame) — the restore skips exactly that prefix
	// when the frame is replayed.
	EvID      uint64 `json:"ev_id,omitempty"`
	FrameRows uint64 `json:"frame_rows,omitempty"`
}

// session is one client stream's server-side state. mu serializes
// everything — line handling, result emission (callbacks fire inside
// rt calls made under mu), heartbeats, park/resume/teardown. srv.mu is
// the inner lock: it may be taken while holding mu, never the reverse.
type session struct {
	srv *Server
	id  string

	mu        sync.Mutex
	conn      net.Conn // nil while parked
	w         *bufio.Writer
	enc       *json.Encoder
	hbStop    chan struct{}
	lingerT   *time.Timer
	resumable bool
	ended     bool
	pings     uint64
	resumes   uint64

	rt      *greta.Runtime
	handles map[string]*greta.Handle
	order   []string // handle registration order, for rebase re-delivery

	outSeq   uint64 // seq of the newest durable line emitted
	outBuf   []outLine
	outFloor uint64 // seq of the newest discarded retained line
	lastSeq  uint64 // last client event seq applied

	processed uint64
	dropped   uint64
	nextID    uint64 // event ids on the non-resumable path
	// evID allocates engine event ids on the resumable path. It is
	// committed only after the runtime call returns (alongside
	// lastSeq), so a snapshot firing inside the call still describes
	// the state before the in-flight event; batch frames commit it per
	// row together with frameRows, the mid-frame progress counter the
	// checkpoint meta persists. frameSkip is the restore-side
	// counterpart: rows of the next replayed frame already contained in
	// the snapshot.
	evID      uint64
	frameRows uint64
	frameSkip uint64
	// shard holds the cluster worker slots once the session flipped
	// into shard mode (Server.AllowShard + {"cmd":"shard"}).
	shard *shardState
	// schemas caches the per-(type, column-set) schemas batch frames
	// bind their rows to, so repeated frames of one shape reuse one
	// schema pointer (the runtime's columnar pre-filter caches per
	// schema identity).
	schemas map[string]*greta.Schema
}

// sendLocked emits one output line (mu held). Durable lines in a
// resumable session get a server seq and are retained for resume
// replay; everything else is fire-and-forget. Returns the flush error
// so heartbeats can detect a dead peer; other callers ignore it (a
// broken conn parks the session via the reader).
func (sess *session) sendLocked(o wireOut, durable bool) error {
	if durable && sess.resumable {
		sess.outSeq++
		o.Seq = sess.outSeq
		b, err := json.Marshal(o)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		sess.outBuf = append(sess.outBuf, outLine{seq: o.Seq, data: b})
		if max := sess.srv.resumeWindow(); len(sess.outBuf) > max {
			drop := len(sess.outBuf) - max
			sess.outFloor = sess.outBuf[drop-1].seq
			sess.outBuf = append(sess.outBuf[:0], sess.outBuf[drop:]...)
		}
		if sess.conn == nil {
			return nil
		}
		if _, err := sess.w.Write(b); err != nil {
			return err
		}
		return sess.w.Flush()
	}
	if sess.conn == nil {
		return nil
	}
	if err := sess.enc.Encode(o); err != nil {
		return err
	}
	return sess.w.Flush()
}

// metaBytes is the WithCheckpointMeta provider: it runs on the ingest
// path inside rt.Process (which the session only calls under mu), so
// reading the cursors directly is safe and it must not lock.
func (sess *session) metaBytes() []byte {
	b, _ := json.Marshal(sessionMeta{
		ID: sess.id, LastSeq: sess.lastSeq, OutSeq: sess.outSeq,
		Processed: sess.processed, Dropped: sess.dropped,
		V: 2, EvID: sess.evID, FrameRows: sess.frameRows,
	})
	return b
}

// wire attaches a handle's results to the session output. Callbacks
// fire inside rt calls made under sess.mu, hence sendLocked.
func (sess *session) wire(h *greta.Handle) {
	id := h.ID()
	sess.handles[id] = h
	sess.order = append(sess.order, id)
	h.OnResult(func(r greta.Result) {
		_ = sess.sendLocked(wireOut{Result: &WireResult{
			Stmt:  id,
			Group: r.Group, Wid: r.Wid,
			Start: r.WindowStart, End: r.WindowEnd,
			Values: r.Values,
		}}, true)
	})
}

func (sess *session) stopHeartbeatLocked() {
	if sess.hbStop != nil {
		close(sess.hbStop)
		sess.hbStop = nil
	}
}

// startHeartbeatLocked begins pinging the attached connection. The
// goroutine exits when stopped, when the connection changes, or when
// the session ends; a failed ping closes the conn so the reader
// notices promptly.
func (sess *session) startHeartbeatLocked() {
	if sess.srv.Heartbeat <= 0 || sess.conn == nil || sess.hbStop != nil {
		return
	}
	stop := make(chan struct{})
	sess.hbStop = stop
	myConn := sess.conn
	sess.srv.wg.Add(1)
	go func() {
		defer sess.srv.wg.Done()
		t := time.NewTicker(sess.srv.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			sess.mu.Lock()
			if sess.ended || sess.conn != myConn {
				sess.mu.Unlock()
				return
			}
			sess.pings++
			if err := sess.sendLocked(wireOut{Ping: sess.pings}, false); err != nil {
				_ = myConn.Close() // wake the blocked reader; it parks the session
				sess.mu.Unlock()
				return
			}
			sess.mu.Unlock()
		}
	}()
}

// detachLocked drops the connection (stolen or broken) without
// touching runtime state.
func (sess *session) detachLocked() {
	sess.stopHeartbeatLocked()
	if sess.conn != nil {
		_ = sess.conn.Close()
		sess.conn = nil
		sess.w = nil
		sess.enc = nil
	}
}

// teardownLocked ends the session without a summary: the runtime is
// closed (remaining windows flush to the attached conn, if any) and
// the session forgotten.
func (sess *session) teardownLocked() {
	if sess.ended {
		return
	}
	sess.ended = true
	if sess.lingerT != nil {
		sess.lingerT.Stop()
		sess.lingerT = nil
	}
	if sess.shard != nil {
		sess.shard.discardLocked()
	}
	_ = sess.rt.Close()
	sess.detachLocked()
	sess.srv.removeSession(sess)
}

// finishLocked ends the session gracefully: barrier + close the
// runtime (flushing every open window through the result path), then
// send the {"done":...} summary with per-statement Stats.
func (sess *session) finishLocked() {
	if sess.ended {
		return
	}
	if sess.lingerT != nil {
		sess.lingerT.Stop()
		sess.lingerT = nil
	}
	if sess.shard != nil {
		sess.shard.discardLocked()
	}
	_ = sess.rt.Barrier()
	rs := sess.rt.Stats()
	_ = sess.rt.Close()
	stats := make(map[string]greta.Stats, len(sess.handles))
	for id, h := range sess.handles {
		stats[id] = h.Stats()
	}
	sess.ended = true
	_ = sess.sendLocked(wireOut{Done: true, Events: sess.processed, Drop: sess.dropped,
		SharedStmts: rs.SharedStatements, SharedGraphs: rs.SharedGraphs, Stats: stats}, false)
	sess.detachLocked()
	sess.srv.removeSession(sess)
}

// park handles a reader's exit: a resumable session lingers awaiting a
// resume, anything else tears down. No-op if the connection was stolen
// by a resume or the session already ended.
func (sess *session) park(myConn net.Conn, timedOut bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended || sess.conn != myConn {
		return
	}
	if timedOut {
		// Report the deadline cleanly before dropping the conn; open
		// windows are not flushed on a stalled client's behalf.
		_ = sess.sendLocked(wireOut{Error: "timeout"}, false)
	}
	sess.detachLocked()
	if !sess.resumable || sess.srv.Linger <= 0 || sess.srv.isClosed() {
		sess.teardownLocked()
		return
	}
	sess.lingerT = time.AfterFunc(sess.srv.Linger, sess.expire)
}

// expire tears down a session whose linger window elapsed without a
// resume.
func (sess *session) expire() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended || sess.conn != nil {
		return
	}
	sess.teardownLocked()
}

// fail tears the session down after an internal panic surfaced to the
// client as an error line.
func (sess *session) fail(myConn net.Conn) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended || sess.conn != myConn {
		return
	}
	sess.teardownLocked()
}

// drain is Shutdown's per-session step: barrier the reorder buffer,
// checkpoint if armed (unconfigured is fine; failed writes warn), then
// finish with the terminal summary.
func (sess *session) drain() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended {
		return
	}
	if sess.lingerT != nil {
		sess.lingerT.Stop()
		sess.lingerT = nil
	}
	_ = sess.rt.Barrier()
	if err := sess.rt.Checkpoint(); err != nil && !strings.Contains(err.Error(), "not configured") {
		_ = sess.sendLocked(wireOut{Warn: fmt.Sprintf("checkpoint: %v", err)}, false)
	}
	sess.finishLocked()
}

// statsLocked snapshots the session for a {"cmd":"stats"} reply (mu
// held). The runtime snapshot is the live metrics view — no barrier,
// no flush, safe mid-stream.
func (sess *session) statsLocked() *WireSessStats {
	m := sess.rt.Metrics()
	st := &WireSessStats{
		Session: sess.id, Processed: sess.processed, Dropped: sess.dropped,
		LastSeq: sess.lastSeq, OutSeq: sess.outSeq,
		Resumes: sess.resumes, Pings: sess.pings,
		Retained: len(sess.outBuf), ResumeWindow: sess.srv.resumeWindow(),
		Statements:     len(sess.handles),
		Watermark:      int64(m.Watermark),
		EventTimeMax:   int64(m.MaxEventTime),
		WatermarkLag:   int64(m.WatermarkLag),
		ReorderPending: m.ReorderPending,
		ReorderDropped: m.ReorderDropped,
	}
	st.CheckpointWrites = m.Checkpoint.Writes
	st.CheckpointAgeMS = m.Checkpoint.Age.Milliseconds()
	return st
}

// attachLocked binds a (re)connection to the session and replays or
// rebases the durable output the client missed.
func (sess *session) attachLocked(conn net.Conn, w *bufio.Writer, enc *json.Encoder, recv uint64) {
	sess.detachLocked()
	sess.resumes++
	if hook := sess.srv.TraceHook; hook != nil {
		hook(greta.TraceEvent{Kind: greta.TraceSessionResume, Session: sess.id,
			Watermark: sess.rt.Watermark()})
	}
	if sess.lingerT != nil {
		sess.lingerT.Stop()
		sess.lingerT = nil
	}
	sess.conn = conn
	sess.w = w
	sess.enc = enc
	if recv < sess.outFloor {
		// The client's cursor fell behind the replay window: rebase.
		// Acknowledge first, then re-deliver every retained result with
		// fresh seqs; the client discards its collected set on the ack.
		_ = sess.sendLocked(wireOut{Resumed: &WireResumed{ID: sess.id, Seq: sess.lastSeq, Rebase: true}}, false)
		sess.outBuf = sess.outBuf[:0]
		sess.outFloor = sess.outSeq
		for _, id := range sess.order {
			h, ok := sess.handles[id]
			if !ok {
				continue
			}
			for _, r := range h.Delivered() {
				_ = sess.sendLocked(wireOut{Result: &WireResult{
					Stmt:  id,
					Group: r.Group, Wid: r.Wid,
					Start: r.WindowStart, End: r.WindowEnd,
					Values: r.Values,
				}}, true)
			}
		}
	} else {
		_ = sess.sendLocked(wireOut{Resumed: &WireResumed{ID: sess.id, Seq: sess.lastSeq}}, false)
		for _, l := range sess.outBuf {
			if l.seq <= recv {
				continue
			}
			if _, err := sess.w.Write(l.data); err != nil {
				break
			}
		}
		_ = sess.w.Flush()
	}
	sess.startHeartbeatLocked()
}

// newSession builds the per-connection session state: a fresh Runtime
// (or the deprecated engine shim), reorder slack, and the configured
// statements. Runs before the session is shared, so no locking.
func (s *Server) newSession(conn net.Conn, w *bufio.Writer, enc *json.Encoder) *session {
	sess := &session{srv: s, conn: conn, w: w, enc: enc, handles: map[string]*greta.Handle{}}
	if s.NewEngine != nil {
		// Legacy factory path: the session runtime is the engine's
		// backing one-statement runtime, so client registrations join it.
		eng := s.NewEngine()
		sess.rt = eng.Runtime()
		sess.wire(eng.Handle())
	} else {
		var opts []greta.RuntimeOption
		if s.RuntimeOptions != nil {
			opts = s.RuntimeOptions()
		}
		// Scheduled checkpoint-write failures degrade to warn lines
		// instead of killing the session: the previous generation stays
		// valid and ingestion continues.
		opts = append(opts, greta.WithCheckpointErrors(func(err error) {
			_ = sess.sendLocked(wireOut{Warn: fmt.Sprintf("checkpoint: %v", err)}, false)
		}))
		if s.TraceHook != nil {
			opts = append(opts, greta.WithTraceHook(s.TraceHook))
		}
		sess.rt = greta.NewRuntime(opts...)
	}
	fail := func(err error) *session {
		_ = sess.sendLocked(wireOut{Error: err.Error()}, false)
		_ = sess.rt.Close()
		return nil
	}
	if s.Slack > 0 {
		if err := sess.rt.SetReorderSlack(s.Slack); err != nil {
			return fail(fmt.Errorf("slack: %v", err))
		}
	}
	for _, stmt := range s.Statements {
		h, err := sess.rt.Register(stmt)
		if err != nil {
			return fail(fmt.Errorf("register: %v", err))
		}
		sess.wire(h)
	}
	if !s.trackSession(sess) {
		return fail(errors.New("server shutting down"))
	}
	return sess
}

// resume attaches a reconnecting client to its lingering session:
// steals the old connection if one is still around, replays the
// durable output past the client's cursor, and returns the session for
// the caller's reader loop. nil means the resume was rejected (an
// error line was sent).
func (s *Server) resume(conn net.Conn, w *bufio.Writer, enc *json.Encoder, we *WireEvent) *session {
	reject := func(msg string) *session {
		_ = enc.Encode(wireOut{Error: msg})
		_ = w.Flush()
		return nil
	}
	if s.isClosed() {
		return reject("resume: server shutting down")
	}
	sess := s.lookupSession(we.Session)
	if sess == nil {
		return reject(fmt.Sprintf("resume: unknown session %q", we.Session))
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended {
		return reject(fmt.Sprintf("resume: session %q ended", we.Session))
	}
	sess.attachLocked(conn, w, enc, we.Recv)
	return sess
}

// reportBadLine surfaces an unparseable line as an error, unless this
// reader's connection was stolen by a resume (a line torn by the very
// break being resumed must not fault the healed session) — then the
// reader just exits.
func (sess *session) reportBadLine(myConn net.Conn, err error) (stop bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended || sess.conn != myConn {
		return true
	}
	_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("bad event: %v", err)}, false)
	return false
}

// handleLine processes one decoded client line under the session lock.
// stop reports that this reader is done: the session finished, ended
// underneath it, or its connection was stolen by a resume.
func (sess *session) handleLine(myConn net.Conn, we *WireEvent) (stop bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended || sess.conn != myConn {
		return true
	}
	// Shard mode intercepts its own commands plus event/batch lines
	// (they carry coordinator route info); everything else — flush,
	// checkpoint, session, resume — keeps its ordinary meaning.
	if we.Cmd == "shard" || (sess.shard != nil && shardFrame(we.Cmd)) {
		return sess.handleShardLine(we)
	}
	switch we.Cmd {
	case "flush":
		sess.finishLocked()
		return true
	case "session":
		sess.enableLocked()
		return false
	case "resume":
		_ = sess.sendLocked(wireOut{Error: "resume: already in a session (resume must be the first line of a new connection)"}, false)
		return false
	case "register":
		if !sess.srv.AllowRegister {
			_ = sess.sendLocked(wireOut{Error: "register: disabled on this server"}, false)
			return false
		}
		// Lifecycle operations are reorder barriers inside the runtime:
		// events sent before the command pass through the slack buffer
		// first, so the registration watermark cuts at the command, and
		// a closing statement's final windows count every prior event.
		stmt, err := greta.Compile(we.Query, sess.srv.CompileOptions...)
		if err != nil {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("register: %v", err)}, false)
			return false
		}
		var opts []greta.RegisterOption
		if we.ID != "" {
			opts = append(opts, greta.WithID(we.ID))
		}
		h, err := sess.rt.Register(stmt, opts...)
		if err != nil {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("register: %v", err)}, false)
			return false
		}
		sess.wire(h)
		_ = sess.sendLocked(wireOut{Registered: &WireRegistered{ID: h.ID(), Query: h.Query()}}, false)
		return false
	case "close":
		h, ok := sess.handles[we.ID]
		if !ok {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("close: unknown statement %q", we.ID)}, false)
			return false
		}
		delete(sess.handles, we.ID)
		if err := h.Close(); err != nil {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("close %s: %v", we.ID, err)}, false)
			return false
		}
		_ = sess.sendLocked(wireOut{Closed: we.ID}, false)
		return false
	case "batch":
		sess.handleBatchLocked(we)
		return false
	case "stats":
		_ = sess.sendLocked(wireOut{SessStats: sess.statsLocked()}, false)
		return false
	case "checkpoint":
		// No barrier: with slack armed the snapshot carries the pending
		// disorder window, and a restore rehydrates it — flushing here
		// would silently narrow the window instead.
		ok := true
		if err := sess.rt.Checkpoint(); err != nil {
			// Degrade loudly but keep serving: the previous generation
			// (if any) is still valid and ingestion continues.
			_ = sess.sendLocked(wireOut{Warn: fmt.Sprintf("checkpoint: %v", err)}, false)
			ok = false
		}
		_ = sess.sendLocked(wireOut{Checkpointed: &ok}, false)
		return false
	case "":
		// An event line.
	default:
		_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("unknown command %q", we.Cmd)}, false)
		return false
	}
	if we.Type == "" {
		_ = sess.sendLocked(wireOut{Error: "event missing type"}, false)
		return false
	}
	var id uint64
	if sess.resumable {
		switch {
		case we.Seq == 0:
			_ = sess.sendLocked(wireOut{Error: "event missing seq (session mode)"}, false)
			return false
		case we.Seq <= sess.lastSeq:
			return false // duplicate from a resume replay: already applied
		case we.Seq != sess.lastSeq+1:
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("sequence gap: got %d, want %d", we.Seq, sess.lastSeq+1)}, false)
			return false
		}
		// One engine id per event, committed after Process with the seq
		// cursor. Ids equal seqs until the first batch frame, which
		// consumes one seq but an id per row.
		id = sess.evID + 1
	} else {
		sess.nextID++
		id = sess.nextID
	}
	err := sess.rt.Process(&greta.Event{
		ID:    id,
		Type:  greta.Type(we.Type),
		Time:  we.Time,
		Attrs: we.Attrs,
		Str:   we.Str,
	})
	// Advance the cursor only after Process returns: a boundary
	// checkpoint fires inside Process BEFORE the trigger event is
	// applied, so the snapshot's meta must still point at the previous
	// seq — otherwise a restore replays from one event too far and the
	// trigger is silently lost. The seq is consumed even when the event
	// is dropped for disorder (the drop is deterministic on replay).
	if sess.resumable {
		sess.lastSeq = we.Seq
		sess.evID++
	}
	if err != nil {
		if errors.Is(err, greta.ErrOutOfOrder) {
			// Dropped by design (paper §2); report without failing the
			// session or any in-flight command acknowledgement. The
			// OrderError carries the event time and violated watermark.
			sess.dropped++
			_ = sess.sendLocked(wireOut{Warn: err.Error()}, false)
			return false
		}
		_ = sess.sendLocked(wireOut{Error: err.Error()}, false)
		return false
	}
	sess.processed++
	return false
}

// handleBatchLocked ingests one columnar batch frame through the
// runtime's batch path: the per-attribute arrays are decoded straight
// into an event batch (no per-row attribute maps), so the runtime
// hashes each partition-key run once and pre-filters predicate
// columns. In a resumable session the frame carries one frame-level
// seq — resume dedup skips whole duplicate frames — and its rows
// consume engine ids from the session's evID cursor. With a scheduled
// checkpoint armed the rows feed the per-event path one at a time
// instead, committing the cursor and frame progress per row, so a
// snapshot firing mid-frame records exactly how much of the frame it
// contains (sessionMeta.FrameRows) and a restore-side replay of the
// frame skips precisely that prefix: exactly-once either way.
func (sess *session) handleBatchLocked(we *WireEvent) {
	if sess.resumable {
		switch {
		case we.Seq == 0:
			_ = sess.sendLocked(wireOut{Error: "batch missing seq (session mode)"}, false)
			return
		case we.Seq <= sess.lastSeq:
			return // duplicate frame from a resume replay: already applied
		case we.Seq != sess.lastSeq+1:
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("sequence gap: got %d, want %d", we.Seq, sess.lastSeq+1)}, false)
			return
		}
	}
	if we.Type == "" {
		_ = sess.sendLocked(wireOut{Error: "batch missing type"}, false)
		return
	}
	n := len(we.Times)
	for a, col := range we.Cols {
		if len(col) != n {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: column %q has %d values, want %d", a, len(col), n)}, false)
			return
		}
	}
	for a, col := range we.SCols {
		if len(col) != n {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: column %q has %d values, want %d", a, len(col), n)}, false)
			return
		}
	}
	if n == 0 {
		if sess.resumable {
			sess.lastSeq = we.Seq
		}
		return
	}
	skip := 0
	if sess.resumable && sess.frameSkip > 0 {
		// Restored mid-frame: the snapshot already contains this frame's
		// first frameSkip rows (their ids are committed in evID); apply
		// only the tail.
		skip = int(sess.frameSkip)
		sess.frameSkip = 0
		if skip > n {
			skip = n
		}
	}
	sch := sess.schemaFor(we)
	if sess.resumable && sess.rt.CheckpointArmed() {
		sess.applyBatchRowsLocked(we, sch, n, skip)
		sess.frameRows = 0
		sess.lastSeq = we.Seq
		return
	}
	// Columnar path: no scheduled snapshot can fire inside ProcessBatch
	// (an explicit checkpoint command is its own line, between frames),
	// so the whole frame is cursor-atomic.
	b := greta.NewBatch(sch, n-skip)
	num := make([]float64, len(sch.Numeric))
	strs := make([]string, len(sch.Strings))
	for i := skip; i < n; i++ {
		for j, a := range sch.Numeric {
			num[j] = we.Cols[a][i]
		}
		for j, a := range sch.Strings {
			strs[j] = we.SCols[a][i]
		}
		var id uint64
		if sess.resumable {
			sess.evID++
			id = sess.evID
		} else {
			sess.nextID++
			id = sess.nextID
		}
		b.Append(id, we.Times[i], num, strs)
	}
	acc, err := sess.rt.ProcessBatch(b)
	sess.processed += uint64(acc)
	if d := (n - skip) - acc; d > 0 {
		sess.dropped += uint64(d)
		_ = sess.sendLocked(wireOut{Warn: fmt.Sprintf("batch: %d of %d rows dropped for disorder", d, n-skip)}, false)
	}
	if sess.resumable {
		sess.lastSeq = we.Seq
	}
	if err != nil {
		_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: %v", err)}, false)
	}
}

// applyBatchRowsLocked feeds a batch frame's rows through the
// per-event path one at a time, committing the session's id cursor and
// frame progress after every row: the checkpoint meta provider (which
// can run inside any of the Process calls, before the in-flight row is
// applied) then always describes a row-exact prefix of the frame.
func (sess *session) applyBatchRowsLocked(we *WireEvent, sch *greta.Schema, n, skip int) {
	dropped := 0
	for i := skip; i < n; i++ {
		num := make([]float64, len(sch.Numeric))
		for j, a := range sch.Numeric {
			num[j] = we.Cols[a][i]
		}
		strs := make([]string, len(sch.Strings))
		for j, a := range sch.Strings {
			strs[j] = we.SCols[a][i]
		}
		err := sess.rt.Process(&greta.Event{
			ID: sess.evID + 1, Type: greta.Type(we.Type), Time: we.Times[i],
			Sch: sch, Num: num, StrV: strs,
		})
		sess.evID++
		sess.frameRows++
		if err != nil {
			if errors.Is(err, greta.ErrOutOfOrder) {
				dropped++
				continue
			}
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: %v", err)}, false)
			return
		}
		sess.processed++
	}
	if dropped > 0 {
		sess.dropped += uint64(dropped)
		_ = sess.sendLocked(wireOut{Warn: fmt.Sprintf("batch: %d of %d rows dropped for disorder", dropped, n-skip)}, false)
	}
}

// schemaFor returns the cached schema for a batch frame's (type,
// column-set) shape, creating it on first sight. Slot order is the
// sorted attribute names, so the same shape always maps to the same
// schema regardless of JSON map iteration order.
func (sess *session) schemaFor(we *WireEvent) *greta.Schema {
	nums := make([]string, 0, len(we.Cols))
	for a := range we.Cols {
		nums = append(nums, a)
	}
	slices.Sort(nums)
	strs := make([]string, 0, len(we.SCols))
	for a := range we.SCols {
		strs = append(strs, a)
	}
	slices.Sort(strs)
	key := we.Type + "\x00" + strings.Join(nums, "\x01") + "\x00" + strings.Join(strs, "\x01")
	if s := sess.schemas[key]; s != nil {
		return s
	}
	s := &greta.Schema{Type: greta.Type(we.Type), Numeric: nums, Strings: strs}
	if sess.schemas == nil {
		sess.schemas = map[string]*greta.Schema{}
	}
	sess.schemas[key] = s
	return s
}

// enableLocked turns the session resumable ({"cmd":"session"}).
func (sess *session) enableLocked() {
	srv := sess.srv
	if srv.Linger <= 0 {
		_ = sess.sendLocked(wireOut{Error: "session: resume disabled on this server (set Server.Linger)"}, false)
		return
	}
	if sess.resumable {
		_ = sess.sendLocked(wireOut{Error: "session: already enabled"}, false)
		return
	}
	if sess.lastSeq > 0 || sess.processed > 0 || sess.dropped > 0 || sess.nextID > 0 {
		// Event ids must equal seqs for the dedup/replay contract; a
		// late enable would leave a prefix without them.
		_ = sess.sendLocked(wireOut{Error: "session: must precede all events"}, false)
		return
	}
	id, err := srv.addSession(sess, "")
	if err != nil {
		_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("session: %v", err)}, false)
		return
	}
	sess.id = id
	sess.resumable = true
	sess.rt.SetCheckpointMeta(sess.metaBytes)
	_ = sess.sendLocked(wireOut{Session: &WireSession{ID: id, LingerMS: srv.Linger.Milliseconds()}}, false)
	sess.startHeartbeatLocked()
}

// RestoreSession rebuilds a parked resumable session from the
// checkpoint directory a crashed server left behind: the snapshot's
// meta blob supplies the session id and cursors, the engine state
// (including the reorder buffer's in-flight events) is rehydrated, and
// the session lingers awaiting a client resume exactly as if the
// connection had just dropped. The resuming client re-sends its
// buffered events after the restored seq cursor; no dedup pass is
// needed because sequence numbers identify the replay precisely.
// Requires Server.Linger > 0. Returns the restored session id.
func (s *Server) RestoreSession(dir string) (string, error) {
	if s.Linger <= 0 {
		return "", errors.New("netstream: RestoreSession requires Server.Linger > 0")
	}
	sess := &session{srv: s, resumable: true, handles: map[string]*greta.Handle{}}
	res, err := greta.Restore(dir, greta.WithCheckpointErrors(func(err error) {
		_ = sess.sendLocked(wireOut{Warn: fmt.Sprintf("checkpoint: %v", err)}, false)
	}))
	if err != nil {
		return "", err
	}
	fail := func(err error) (string, error) {
		_ = res.Close()
		return "", err
	}
	if res.Meta == nil {
		return fail(errors.New("netstream: checkpoint carries no session meta (not a netstream session?)"))
	}
	var m sessionMeta
	if err := json.Unmarshal(res.Meta, &m); err != nil {
		return fail(fmt.Errorf("netstream: bad session meta: %w", err))
	}
	if m.ID == "" {
		return fail(errors.New("netstream: session meta has no id"))
	}
	sess.rt = res.Runtime
	sess.id = m.ID
	sess.lastSeq = m.LastSeq
	sess.outSeq = m.OutSeq
	// Every durable line before the snapshot is gone from the replay
	// window; a client that consumed less than that is rebased onto the
	// retained result set.
	sess.outFloor = m.OutSeq
	sess.processed = m.Processed
	sess.dropped = m.Dropped
	if m.V >= 2 {
		sess.evID = m.EvID
		sess.frameSkip = m.FrameRows
	} else {
		// v1 meta (before batch frames over sessions): ids equal seqs.
		sess.evID = m.LastSeq
	}
	for _, h := range res.Handles {
		sess.wire(h)
	}
	sess.rt.SetCheckpointMeta(sess.metaBytes)
	if _, err := s.addSession(sess, m.ID); err != nil {
		return fail(fmt.Errorf("netstream: %v", err))
	}
	sess.mu.Lock()
	sess.lingerT = time.AfterFunc(s.Linger, sess.expire)
	sess.mu.Unlock()
	return m.ID, nil
}

// ServeConn runs one session over an established connection.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	if s.conns == nil {
		s.conns = map[net.Conn]struct{}{}
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	defer conn.Close()

	w := bufio.NewWriter(&deadlineWriter{conn: conn, d: s.WriteTimeout})
	enc := json.NewEncoder(w)
	var sess *session
	// An engine-side panic must reach the client as an error line, not
	// a silently dropped connection; the session is unrecoverable.
	defer func() {
		if r := recover(); r != nil {
			_ = enc.Encode(wireOut{Error: fmt.Sprintf("internal error: %v", r)})
			_ = w.Flush()
			if sess != nil {
				sess.fail(conn)
			}
		}
	}()

	sc := bufio.NewScanner(&timeoutReader{conn: conn, read: s.ReadTimeout, idle: s.IdleTimeout})
	maxLine := s.MaxLine
	if maxLine <= 0 {
		maxLine = 1024 * 1024
	}
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var we WireEvent
		if err := json.Unmarshal(line, &we); err != nil {
			if sess != nil {
				if sess.reportBadLine(conn, err) {
					return
				}
			} else {
				_ = enc.Encode(wireOut{Error: fmt.Sprintf("bad event: %v", err)})
				_ = w.Flush()
			}
			continue
		}
		if sess == nil {
			if we.Cmd == "resume" {
				if sess = s.resume(conn, w, enc, &we); sess == nil {
					return
				}
				continue
			}
			if sess = s.newSession(conn, w, enc); sess == nil {
				return
			}
		}
		if sess.handleLine(conn, &we) {
			return
		}
	}
	timedOut := isTimeout(sc.Err())
	if sess == nil {
		if timedOut {
			_ = enc.Encode(wireOut{Error: "timeout"})
			_ = w.Flush()
		}
		return
	}
	sess.park(conn, timedOut)
}

// Client streams events to a netstream server and receives results.
type Client struct {
	// SendWindow bounds the resend buffer of a resumable session: the
	// newest SendWindow unacknowledged events are retained for replay
	// after Resume (default 1024). Set it before EnableResume.
	SendWindow int

	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	// addr is remembered by Dial/DialContext/LazyDial so Resume (and a
	// lazily-created client's first use) can establish a connection.
	addr string
	// pending buffers results that arrive interleaved with command
	// acknowledgements; Flush prepends them.
	pending []WireResult
	// warnings collects non-fatal {"warn":...} diagnostics (e.g.
	// out-of-order drops) observed while reading replies.
	warnings []string

	// session resilience state: the server-issued id, the event seq
	// cursor, the last consumed durable server seq, the bounded resend
	// ring, and the retained final summary.
	session  string
	seq      uint64
	lastRecv uint64
	ring     []WireEvent
	summary  *WireDone
}

// Warnings returns the non-fatal server diagnostics collected so far
// (out-of-order drops and the like). The session outlives them; the
// Flush summary's dropped count reflects the same events.
func (c *Client) Warnings() []string { return c.warnings }

// Summary returns the session summary from the final {"done":...}
// line, available after Flush (nil before).
func (c *Client) Summary() *WireDone { return c.summary }

// SessionID returns the server-issued session id (empty before
// EnableResume).
func (c *Client) SessionID() string { return c.session }

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.addr = addr
	return c, nil
}

// DialContext connects to a server, retrying transient dial failures
// (connection refused/reset, timeouts — e.g. the server has not come
// up yet) with exponential backoff from 10ms to 500ms until ctx is
// done. Non-transient failures return immediately.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	conn, err := dialBackoff(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.addr = addr
	return c, nil
}

// LazyDial returns a client with no connection yet: RegisterContext,
// SendContext, and friends establish it on first use under their
// context, with the DialContext retry/backoff. Useful when the
// producer starts before the server is reachable.
func LazyDial(addr string) *Client { return &Client{addr: addr} }

func dialBackoff(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	backoff := 10 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if !transientDial(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("netstream: dial %s: %w (last: %v)", addr, ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// transientDial reports whether a dial error is worth retrying: the
// peer actively refused or dropped the handshake, or it timed out.
// Anything else (bad address, canceled context, ...) is permanent.
func transientDial(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ensure establishes a lazily-dialed client's connection.
func (c *Client) ensure(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	if c.addr == "" {
		return errors.New("netstream: client has no connection and no address")
	}
	conn, err := dialBackoff(ctx, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	return nil
}

// note applies the session-resilience bookkeeping every reply loop
// shares: heartbeats are swallowed, duplicate durable lines (replayed
// after a resume) are skipped by seq, warnings are collected. Returns
// true when the line is fully consumed.
func (c *Client) note(o *wireOut) bool {
	if o.Ping != 0 {
		return true
	}
	if o.Seq != 0 {
		if o.Seq <= c.lastRecv {
			return true // duplicate replay of a line already consumed
		}
		c.lastRecv = o.Seq
	}
	if o.Warn != "" {
		c.warnings = append(c.warnings, o.Warn)
		return true
	}
	return false
}

// RegisterContext is Register for lazily-dialed clients: it first
// establishes the connection (retrying transient dial failures with
// backoff under ctx), then registers the statement.
func (c *Client) RegisterContext(ctx context.Context, query string) (string, error) {
	if err := c.ensure(ctx); err != nil {
		return "", err
	}
	return c.Register(query)
}

// SendContext is Send for lazily-dialed clients, establishing the
// connection under ctx first if needed.
func (c *Client) SendContext(ctx context.Context, typ string, t int64, attrs map[string]float64, strs map[string]string) error {
	if err := c.ensure(ctx); err != nil {
		return err
	}
	return c.Send(typ, t, attrs, strs)
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// EnableResume asks the server for a resumable session; it must be
// called before the first event. From then on Send stamps each event
// with a sequence number and retains the newest SendWindow of them for
// replay, and a broken connection can be healed with Resume instead of
// losing the stream. Returns the server-issued session id. Requires
// the server to arm Linger.
func (c *Client) EnableResume(ctx context.Context) (string, error) {
	if err := c.ensure(ctx); err != nil {
		return "", err
	}
	if c.session != "" {
		return c.session, nil
	}
	if err := c.enc.Encode(WireEvent{Cmd: "session"}); err != nil {
		return "", err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return "", err
		}
		if c.note(&o) {
			continue
		}
		switch {
		case o.Error != "":
			return "", fmt.Errorf("server: %s", o.Error)
		case o.Session != nil:
			c.session = o.Session.ID
			if c.SendWindow == 0 {
				c.SendWindow = 1024
			}
			return c.session, nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return "", errors.New("server ended session before acknowledging session")
		}
	}
}

// Resume reconnects a resumable session after a connection failure:
// it redials with the DialContext backoff, identifies the session and
// the last server output consumed, and re-sends the unacknowledged
// tail of the send buffer once the server reports how far it got.
// Results the server replays that were already consumed are skipped
// by seq; if the server rebased (the client fell behind the replay
// window), previously collected results are discarded and the full
// retained set is re-delivered. Fails when the session expired, the
// server is gone past the dial deadline, or the gap exceeds the send
// window.
func (c *Client) Resume(ctx context.Context) error {
	if c.session == "" {
		return errors.New("netstream: no resumable session (call EnableResume first)")
	}
	if c.addr == "" {
		return errors.New("netstream: client has no address to redial")
	}
	if c.conn != nil {
		_ = c.conn.Close()
	}
	conn, err := dialBackoff(ctx, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	if err := c.enc.Encode(WireEvent{Cmd: "resume", Session: c.session, Recv: c.lastRecv}); err != nil {
		return err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return err
		}
		if o.Resumed == nil {
			if o.Error != "" {
				return fmt.Errorf("server: %s", o.Error)
			}
			c.note(&o) // pings/warns; durable lines only follow the ack
			continue
		}
		if o.Resumed.Rebase {
			c.pending = nil
		}
		ack := o.Resumed.Seq
		if ack < c.seq {
			need := c.seq - ack
			if uint64(len(c.ring)) < need || c.ring[len(c.ring)-int(need)].Seq != ack+1 {
				return fmt.Errorf("netstream: resume window exceeded (server applied through seq %d, oldest buffered is %d)",
					ack, c.oldestBuffered())
			}
			for _, we := range c.ring[len(c.ring)-int(need):] {
				if err := c.enc.Encode(we); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func (c *Client) oldestBuffered() uint64 {
	if len(c.ring) == 0 {
		return 0
	}
	return c.ring[0].Seq
}

// Send streams one event. In a resumable session it is stamped with
// the next sequence number and retained (bounded by SendWindow) for
// replay after Resume — buffer first, so an event lost to the write
// error that reveals the break is still replayable.
func (c *Client) Send(typ string, t int64, attrs map[string]float64, strs map[string]string) error {
	we := WireEvent{Type: typ, Time: t, Attrs: attrs, Str: strs}
	if c.session != "" {
		c.seq++
		we.Seq = c.seq
		c.ring = append(c.ring, we)
		if w := c.SendWindow; w > 0 && len(c.ring) > w {
			c.ring = append(c.ring[:0], c.ring[len(c.ring)-w:]...)
		}
	}
	return c.enc.Encode(we)
}

// SendBatch streams a columnar batch frame: n rows of one type, times
// in non-decreasing order, cols/scols mapping each attribute to one
// value per row. The server decodes the arrays straight into its
// columnar ingest path. In a resumable session the frame carries one
// frame-level sequence number and is retained whole in the resend
// buffer — the server dedups duplicate frames by seq after a Resume —
// so batches stay columnar end to end instead of degrading to
// per-event sends. The retained copy is deep: the caller may reuse its
// arrays after SendBatch returns.
func (c *Client) SendBatch(typ string, times []int64, cols map[string][]float64, scols map[string][]string) error {
	for a, col := range cols {
		if len(col) != len(times) {
			return fmt.Errorf("netstream: batch column %q has %d values, want %d", a, len(col), len(times))
		}
	}
	for a, col := range scols {
		if len(col) != len(times) {
			return fmt.Errorf("netstream: batch column %q has %d values, want %d", a, len(col), len(times))
		}
	}
	we := WireEvent{Cmd: "batch", Type: typ, Times: times, Cols: cols, SCols: scols}
	if c.session != "" {
		we.Times = slices.Clone(times)
		if len(cols) > 0 {
			cp := make(map[string][]float64, len(cols))
			for a, col := range cols {
				cp[a] = slices.Clone(col)
			}
			we.Cols = cp
		}
		if len(scols) > 0 {
			cp := make(map[string][]string, len(scols))
			for a, col := range scols {
				cp[a] = slices.Clone(col)
			}
			we.SCols = cp
		}
		c.seq++
		we.Seq = c.seq
		c.ring = append(c.ring, we)
		if w := c.SendWindow; w > 0 && len(c.ring) > w {
			c.ring = append(c.ring[:0], c.ring[len(c.ring)-w:]...)
		}
	}
	return c.enc.Encode(we)
}

// Register attaches a new statement mid-stream and returns its id.
// Results already in flight are buffered for Flush.
func (c *Client) Register(query string) (string, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "register", Query: query}); err != nil {
		return "", err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return "", err
		}
		if c.note(&o) {
			continue
		}
		switch {
		case o.Error != "":
			return "", fmt.Errorf("server: %s", o.Error)
		case o.Registered != nil:
			return o.Registered.ID, nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return "", fmt.Errorf("server ended session before acknowledging register")
		}
	}
}

// CloseStatement closes one statement mid-stream; its open windows
// flush first (those results are buffered for Flush).
func (c *Client) CloseStatement(id string) error {
	if err := c.enc.Encode(WireEvent{Cmd: "close", ID: id}); err != nil {
		return err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return err
		}
		if c.note(&o) {
			continue
		}
		switch {
		case o.Error != "":
			return fmt.Errorf("server: %s", o.Error)
		case o.Closed == id:
			return nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return fmt.Errorf("server ended session before acknowledging close")
		}
	}
}

// Checkpoint asks the server to durably snapshot this session's
// runtime now (the server must arm checkpointing via RuntimeOptions).
// A degraded checkpoint — write failure or no configuration — returns
// an error carrying the server's diagnostic; the session itself keeps
// serving, so the caller may continue sending events either way.
func (c *Client) Checkpoint() error {
	if err := c.enc.Encode(WireEvent{Cmd: "checkpoint"}); err != nil {
		return err
	}
	var lastWarn string
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return err
		}
		if o.Warn != "" {
			c.warnings = append(c.warnings, o.Warn)
			lastWarn = o.Warn
			continue
		}
		if c.note(&o) {
			continue
		}
		switch {
		case o.Error != "":
			return fmt.Errorf("server: %s", o.Error)
		case o.Checkpointed != nil:
			if *o.Checkpointed {
				return nil
			}
			if lastWarn != "" {
				return fmt.Errorf("server: %s", lastWarn)
			}
			return errors.New("server: checkpoint failed")
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return errors.New("server ended session before acknowledging checkpoint")
		}
	}
}

// Stats asks the server for a live session snapshot ({"cmd":"stats"}):
// resilience cursors, watermark/lag gauges, reorder depth, checkpoint
// durability. Unlike Flush it is non-terminal — poll it mid-stream.
// Results arriving interleaved with the reply are buffered for the
// next Flush.
func (c *Client) Stats() (*WireSessStats, error) {
	if err := c.ensure(context.Background()); err != nil {
		return nil, err
	}
	if err := c.enc.Encode(WireEvent{Cmd: "stats"}); err != nil {
		return nil, err
	}
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return nil, err
		}
		if c.note(&o) {
			continue
		}
		switch {
		case o.Error != "":
			return nil, fmt.Errorf("server: %s", o.Error)
		case o.SessStats != nil:
			return o.SessStats, nil
		case o.Result != nil:
			c.pending = append(c.pending, *o.Result)
		case o.Done:
			return nil, errors.New("server ended session before stats reply")
		}
	}
}

// Flush ends the stream and collects all remaining results plus the
// session summary (Summary retains the full set of counters).
func (c *Client) Flush() ([]WireResult, uint64, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "flush"}); err != nil {
		return nil, 0, err
	}
	results := c.pending
	c.pending = nil
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return results, 0, err
		}
		if c.note(&o) {
			continue
		}
		if o.Error != "" {
			return results, 0, fmt.Errorf("server: %s", o.Error)
		}
		if o.Result != nil {
			results = append(results, *o.Result)
		}
		if o.Done {
			c.summary = &WireDone{
				Events: o.Events, Dropped: o.Drop,
				SharedStmts: o.SharedStmts, SharedGraphs: o.SharedGraphs,
				Stats: o.Stats,
			}
			return results, o.Events, nil
		}
	}
}

// Close closes the connection (a no-op on a lazily-dialed client that
// never connected).
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
