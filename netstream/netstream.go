// Package netstream provides network ingestion for GRETA engines: a
// line-oriented JSON protocol over TCP (or any net.Conn) that feeds an
// engine from remote event producers and pushes window results back as
// they are emitted.
//
// Protocol (newline-delimited JSON):
//
//	client → server   {"type":"Stock","time":17,"attrs":{"price":99.5},"str":{"company":"co01"}}
//	client → server   {"cmd":"flush"}     — close windows, receive remaining results, end session
//	server → client   {"result":{"group":"...","wid":3,"start":30,"end":60,"values":[42]}}
//	server → client   {"done":true,"events":12345,"dropped":0}
//
// Events must arrive in non-decreasing time order per connection; an
// optional reorder slack buffers and re-sorts bounded disorder (the
// out-of-order handling the paper delegates upstream, §2).
package netstream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/reorder"
)

// WireEvent is the JSON representation of one event.
type WireEvent struct {
	Cmd   string             `json:"cmd,omitempty"`
	Type  string             `json:"type,omitempty"`
	Time  int64              `json:"time"`
	Attrs map[string]float64 `json:"attrs,omitempty"`
	Str   map[string]string  `json:"str,omitempty"`
}

// WireResult is the JSON representation of one emitted result.
type WireResult struct {
	Group  string    `json:"group"`
	Wid    int64     `json:"wid"`
	Start  int64     `json:"start"`
	End    int64     `json:"end"`
	Values []float64 `json:"values"`
}

type wireOut struct {
	Result *WireResult `json:"result,omitempty"`
	Done   bool        `json:"done,omitempty"`
	Events uint64      `json:"events,omitempty"`
	Drop   uint64      `json:"dropped,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// EngineFactory builds a fresh engine per connection.
type EngineFactory func() *greta.Engine

// Server serves GRETA sessions: each accepted connection gets its own
// engine (its own stream).
type Server struct {
	NewEngine EngineFactory
	// Slack enables the reorder buffer with the given time slack.
	Slack greta.Time

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections on ln until it is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// ServeConn runs one session over an established connection.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	eng := s.NewEngine()
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	send := func(o wireOut) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(o)
		_ = w.Flush()
	}
	eng.OnResult(func(r greta.Result) {
		send(wireOut{Result: &WireResult{
			Group: r.Group, Wid: r.Wid,
			Start: r.WindowStart, End: r.WindowEnd,
			Values: r.Values,
		}})
	})
	var nextID uint64
	feed := func(e *greta.Event) { eng.Process(e) }
	var buf *reorder.Buffer
	if s.Slack > 0 {
		buf = reorder.New(s.Slack, feed)
		feed = buf.Push
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var we WireEvent
		if err := json.Unmarshal(line, &we); err != nil {
			send(wireOut{Error: fmt.Sprintf("bad event: %v", err)})
			continue
		}
		if we.Cmd == "flush" {
			break
		}
		if we.Type == "" {
			send(wireOut{Error: "event missing type"})
			continue
		}
		nextID++
		feed(&greta.Event{
			ID:    nextID,
			Type:  greta.Type(we.Type),
			Time:  we.Time,
			Attrs: we.Attrs,
			Str:   we.Str,
		})
	}
	if buf != nil {
		buf.Flush()
	}
	eng.Flush()
	var dropped uint64
	if buf != nil {
		dropped = buf.Dropped()
	}
	send(wireOut{Done: true, Events: eng.Stats().Events, Drop: dropped + eng.Stats().OutOfOrder})
}

// Client streams events to a netstream server and receives results.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// Send streams one event.
func (c *Client) Send(typ string, t int64, attrs map[string]float64, strs map[string]string) error {
	return c.enc.Encode(WireEvent{Type: typ, Time: t, Attrs: attrs, Str: strs})
}

// Flush ends the stream and collects all remaining results plus the
// session summary.
func (c *Client) Flush() ([]WireResult, uint64, error) {
	if err := c.enc.Encode(WireEvent{Cmd: "flush"}); err != nil {
		return nil, 0, err
	}
	var results []WireResult
	for {
		var o wireOut
		if err := c.dec.Decode(&o); err != nil {
			return results, 0, err
		}
		if o.Error != "" {
			return results, 0, fmt.Errorf("server: %s", o.Error)
		}
		if o.Result != nil {
			results = append(results, *o.Result)
		}
		if o.Done {
			return results, o.Events, nil
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
