package netstream

import (
	"fmt"
	"net"
	"testing"

	"github.com/greta-cep/greta"
)

func startServer(t *testing.T, qsrc string, slack greta.Time) (addr string, srv *Server) {
	t.Helper()
	stmt, err := greta.Compile(qsrc)
	if err != nil {
		t.Fatal(err)
	}
	srv = &Server{
		NewEngine: func() *greta.Engine { return stmt.NewEngine() },
		Slack:     slack,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

func TestEndToEndSession(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*), SUM(A.x) PATTERN (SEQ(A+, B))+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The Fig. 12 stream: expect COUNT(*)=11, SUM(A.x)=100.
	send := func(typ string, tm int64, x float64) {
		attrs := map[string]float64{}
		if x != 0 {
			attrs["x"] = x
		}
		if err := c.Send(typ, tm, attrs, nil); err != nil {
			t.Fatal(err)
		}
	}
	send("A", 1, 5)
	send("B", 2, 0)
	send("A", 3, 6)
	send("A", 4, 4)
	send("B", 7, 0)
	results, events, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if events != 5 {
		t.Errorf("events = %d, want 5", events)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Values[0] != 11 || results[0].Values[1] != 100 {
		t.Errorf("values = %v, want [11 100]", results[0].Values)
	}
}

func TestStreamingWindowResults(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, tm := range []int64{1, 5, 12, 25} {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0 ([0,10): a1,a5 -> 3 trends), 1 ([10,20): a12 -> 1),
	// 2 ([20,30): a25 -> 1).
	if len(results) != 3 {
		t.Fatalf("results = %+v, want 3 windows", results)
	}
	if results[0].Values[0] != 3 {
		t.Errorf("window 0 count = %v, want 3", results[0].Values[0])
	}
}

func TestReorderSlack(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN SEQ(A, B)", 10)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// B arrives before A but carries a later timestamp after reordering
	// the pair forms one match.
	if err := c.Send("B", 5, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Values[0] != 1 {
		t.Errorf("results = %+v, want one match", results)
	}
}

func TestBadInputReported(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if _, _, err := c.Flush(); err == nil {
		t.Error("expected protocol error for malformed event")
	}
}

func TestMissingTypeReported(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Flush(); err == nil {
		t.Error("expected error for missing type")
	}
}

func TestConcurrentSessions(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	done := make(chan error, 4)
	for s := 0; s < 4; s++ {
		go func(n int) {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 1; i <= n; i++ {
				if err := c.Send("A", int64(i), nil, nil); err != nil {
					done <- err
					return
				}
			}
			results, _, err := c.Flush()
			if err != nil {
				done <- err
				return
			}
			want := float64(uint64(1)<<uint(n)) - 1
			if len(results) != 1 || results[0].Values[0] != want {
				done <- errorf("session %d: got %+v, want %v", n, results, want)
				return
			}
			done <- nil
		}(3 + s)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func errorf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

// startRuntimeServer serves multi-statement sessions with mid-stream
// registration enabled.
func startRuntimeServer(t *testing.T, queries ...string) string {
	t.Helper()
	srv := &Server{AllowRegister: true}
	for _, q := range queries {
		stmt, err := greta.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		srv.Statements = append(srv.Statements, stmt)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestMultiStatementTaggedResults runs two statements over one shared
// session stream and checks results carry their statement ids.
func TestMultiStatementTaggedResults(t *testing.T) {
	addr := startRuntimeServer(t,
		"RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, e := range []struct {
		typ string
		tm  int64
	}{{"A", 1}, {"A", 3}, {"B", 5}, {"A", 12}} {
		if err := c.Send(e.typ, e.tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, events, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if events != 4 {
		t.Errorf("events = %d, want 4", events)
	}
	byStmt := map[string]int{}
	for _, r := range results {
		byStmt[r.Stmt]++
	}
	// q0: windows 0 and 1 (A-trends); q1: window 0 (two SEQ(A,B) matches).
	if byStmt["q0"] != 2 || byStmt["q1"] != 1 {
		t.Errorf("results per statement = %v, want q0:2 q1:1 (all %+v)", byStmt, results)
	}
}

// TestMidStreamRegisterAndClose registers a statement mid-stream (it
// sees only the suffix), then closes the first statement and checks
// the survivor keeps producing.
func TestMidStreamRegisterAndClose(t *testing.T) {
	addr := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for tm := int64(1); tm <= 12; tm++ {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.Register("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	if err != nil {
		t.Fatal(err)
	}
	if id != "q1" {
		t.Errorf("registered id = %q, want q1", id)
	}
	if err := c.CloseStatement("q0"); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseStatement("q0"); err == nil {
		t.Error("closing q0 twice should report an error")
	}
	for tm := int64(13); tm <= 25; tm++ {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string][]int64{}
	for _, r := range results {
		counts[r.Stmt] = append(counts[r.Stmt], r.Wid)
	}
	// q0 closed at watermark 12: window 0 plus the flushed window 1.
	if len(counts["q0"]) != 2 {
		t.Errorf("q0 windows = %v, want window 0 + flushed window 1", counts["q0"])
	}
	// q1 registered at watermark 12: it must not emit window 0 (closed
	// before registration) but covers windows 1 and 2.
	for _, wid := range counts["q1"] {
		if wid == 0 {
			t.Errorf("q1 emitted window 0, which closed before registration (windows %v)", counts["q1"])
		}
	}
	if len(counts["q1"]) != 2 {
		t.Errorf("q1 windows = %v, want 2 (windows 1 and 2)", counts["q1"])
	}
}

// TestRegisterRejected covers the register error paths: disabled
// server and bad query text, both reported as protocol errors.
func TestRegisterRejected(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Register("RETURN COUNT(*) PATTERN B+"); err == nil {
		t.Error("register on a NewEngine-only server must be rejected")
	}

	addr2 := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+")
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Register("bogus query"); err == nil {
		t.Error("register with a bad query must be rejected")
	}
	// The session survives a rejected registration.
	if err := c2.Send("A", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, events, err := c2.Flush(); err != nil || events != 1 {
		t.Errorf("session after rejected register: events=%d err=%v", events, err)
	}
}

// TestOutOfOrderReported checks that events violating time order are
// dropped, counted, and reported to the client as non-fatal warnings
// instead of silently swallowed — and that the session (and its
// results) survives.
func TestOutOfOrderReported(t *testing.T) {
	addr := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("A", 10, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 3, nil, nil); err != nil { // late, no slack
		t.Fatal(err)
	}
	if err := c.Send("A", 12, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, events, err := c.Flush()
	if err != nil {
		t.Fatalf("out-of-order drops must not fail the session: %v", err)
	}
	if events != 2 {
		t.Errorf("events = %d, want 2 (the late event dropped)", events)
	}
	if len(results) != 1 || results[0].Values[0] != 3 { // trends over {a10, a12}
		t.Errorf("results = %+v, want count 3", results)
	}
	if len(c.Warnings()) != 1 {
		t.Errorf("warnings = %v, want exactly the drop diagnostic", c.Warnings())
	}
}

// TestRegisterAfterDropNotMisattributed locks in the warn/error split:
// a register command issued right after an out-of-order drop must see
// its own acknowledgement, not the drop diagnostic.
func TestRegisterAfterDropNotMisattributed(t *testing.T) {
	addr := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("A", 10, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 2, nil, nil); err != nil { // dropped, emits a warn line
		t.Fatal(err)
	}
	id, err := c.Register("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	if err != nil {
		t.Fatalf("register misattributed the drop diagnostic: %v", err)
	}
	if id != "q1" {
		t.Errorf("registered id = %q, want q1", id)
	}
	if err := c.Send("A", 15, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Window 1 ([10,20)): q0 saw {a10, a15} → 3 trends; q1 registered
	// at watermark 10 saw only a15 → 1 trend.
	byStmt := map[string]float64{}
	for _, r := range results {
		if r.Wid == 1 {
			byStmt[r.Stmt] = r.Values[0]
		}
	}
	if byStmt["q0"] != 3 || byStmt["q1"] != 1 {
		t.Errorf("window-1 counts per statement = %v, want q0:3 q1:1 (all %+v)", byStmt, results)
	}
}
