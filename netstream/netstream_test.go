package netstream

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/greta-cep/greta"
)

func startServer(t *testing.T, qsrc string, slack greta.Time) (addr string, srv *Server) {
	t.Helper()
	stmt, err := greta.Compile(qsrc)
	if err != nil {
		t.Fatal(err)
	}
	srv = &Server{
		NewEngine: func() *greta.Engine { return stmt.NewEngine() },
		Slack:     slack,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

func TestEndToEndSession(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*), SUM(A.x) PATTERN (SEQ(A+, B))+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The Fig. 12 stream: expect COUNT(*)=11, SUM(A.x)=100.
	send := func(typ string, tm int64, x float64) {
		attrs := map[string]float64{}
		if x != 0 {
			attrs["x"] = x
		}
		if err := c.Send(typ, tm, attrs, nil); err != nil {
			t.Fatal(err)
		}
	}
	send("A", 1, 5)
	send("B", 2, 0)
	send("A", 3, 6)
	send("A", 4, 4)
	send("B", 7, 0)
	results, events, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if events != 5 {
		t.Errorf("events = %d, want 5", events)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Values[0] != 11 || results[0].Values[1] != 100 {
		t.Errorf("values = %v, want [11 100]", results[0].Values)
	}
}

func TestStreamingWindowResults(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, tm := range []int64{1, 5, 12, 25} {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0 ([0,10): a1,a5 -> 3 trends), 1 ([10,20): a12 -> 1),
	// 2 ([20,30): a25 -> 1).
	if len(results) != 3 {
		t.Fatalf("results = %+v, want 3 windows", results)
	}
	if results[0].Values[0] != 3 {
		t.Errorf("window 0 count = %v, want 3", results[0].Values[0])
	}
}

func TestReorderSlack(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN SEQ(A, B)", 10)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// B arrives before A but carries a later timestamp after reordering
	// the pair forms one match.
	if err := c.Send("B", 5, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Values[0] != 1 {
		t.Errorf("results = %+v, want one match", results)
	}
}

func TestBadInputReported(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if _, _, err := c.Flush(); err == nil {
		t.Error("expected protocol error for malformed event")
	}
}

func TestMissingTypeReported(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Flush(); err == nil {
		t.Error("expected error for missing type")
	}
}

func TestConcurrentSessions(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	done := make(chan error, 4)
	for s := 0; s < 4; s++ {
		go func(n int) {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 1; i <= n; i++ {
				if err := c.Send("A", int64(i), nil, nil); err != nil {
					done <- err
					return
				}
			}
			results, _, err := c.Flush()
			if err != nil {
				done <- err
				return
			}
			want := float64(uint64(1)<<uint(n)) - 1
			if len(results) != 1 || results[0].Values[0] != want {
				done <- errorf("session %d: got %+v, want %v", n, results, want)
				return
			}
			done <- nil
		}(3 + s)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func errorf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

// startRuntimeServer serves multi-statement sessions with mid-stream
// registration enabled.
func startRuntimeServer(t *testing.T, queries ...string) string {
	t.Helper()
	srv := &Server{AllowRegister: true}
	for _, q := range queries {
		stmt, err := greta.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		srv.Statements = append(srv.Statements, stmt)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestMultiStatementTaggedResults runs two statements over one shared
// session stream and checks results carry their statement ids.
func TestMultiStatementTaggedResults(t *testing.T) {
	addr := startRuntimeServer(t,
		"RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10",
		"RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, e := range []struct {
		typ string
		tm  int64
	}{{"A", 1}, {"A", 3}, {"B", 5}, {"A", 12}} {
		if err := c.Send(e.typ, e.tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, events, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if events != 4 {
		t.Errorf("events = %d, want 4", events)
	}
	byStmt := map[string]int{}
	for _, r := range results {
		byStmt[r.Stmt]++
	}
	// q0: windows 0 and 1 (A-trends); q1: window 0 (two SEQ(A,B) matches).
	if byStmt["q0"] != 2 || byStmt["q1"] != 1 {
		t.Errorf("results per statement = %v, want q0:2 q1:1 (all %+v)", byStmt, results)
	}
}

// TestMidStreamRegisterAndClose registers a statement mid-stream (it
// sees only the suffix), then closes the first statement and checks
// the survivor keeps producing.
func TestMidStreamRegisterAndClose(t *testing.T) {
	addr := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for tm := int64(1); tm <= 12; tm++ {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.Register("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	if err != nil {
		t.Fatal(err)
	}
	if id != "q1" {
		t.Errorf("registered id = %q, want q1", id)
	}
	if err := c.CloseStatement("q0"); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseStatement("q0"); err == nil {
		t.Error("closing q0 twice should report an error")
	}
	for tm := int64(13); tm <= 25; tm++ {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string][]int64{}
	for _, r := range results {
		counts[r.Stmt] = append(counts[r.Stmt], r.Wid)
	}
	// q0 closed at watermark 12: window 0 plus the flushed window 1.
	if len(counts["q0"]) != 2 {
		t.Errorf("q0 windows = %v, want window 0 + flushed window 1", counts["q0"])
	}
	// q1 registered at watermark 12: it must not emit window 0 (closed
	// before registration) but covers windows 1 and 2.
	for _, wid := range counts["q1"] {
		if wid == 0 {
			t.Errorf("q1 emitted window 0, which closed before registration (windows %v)", counts["q1"])
		}
	}
	if len(counts["q1"]) != 2 {
		t.Errorf("q1 windows = %v, want 2 (windows 1 and 2)", counts["q1"])
	}
}

// TestRegisterRejected covers the register error paths: disabled
// server and bad query text, both reported as protocol errors.
func TestRegisterRejected(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Register("RETURN COUNT(*) PATTERN B+"); err == nil {
		t.Error("register on a NewEngine-only server must be rejected")
	}

	addr2 := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+")
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Register("bogus query"); err == nil {
		t.Error("register with a bad query must be rejected")
	}
	// The session survives a rejected registration.
	if err := c2.Send("A", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, events, err := c2.Flush(); err != nil || events != 1 {
		t.Errorf("session after rejected register: events=%d err=%v", events, err)
	}
}

// TestOutOfOrderReported checks that events violating time order are
// dropped, counted, and reported to the client as non-fatal warnings
// instead of silently swallowed — and that the session (and its
// results) survives.
func TestOutOfOrderReported(t *testing.T) {
	addr := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("A", 10, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 3, nil, nil); err != nil { // late, no slack
		t.Fatal(err)
	}
	if err := c.Send("A", 12, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, events, err := c.Flush()
	if err != nil {
		t.Fatalf("out-of-order drops must not fail the session: %v", err)
	}
	if events != 2 {
		t.Errorf("events = %d, want 2 (the late event dropped)", events)
	}
	if len(results) != 1 || results[0].Values[0] != 3 { // trends over {a10, a12}
		t.Errorf("results = %+v, want count 3", results)
	}
	if len(c.Warnings()) != 1 {
		t.Errorf("warnings = %v, want exactly the drop diagnostic", c.Warnings())
	}
}

// startOptServer serves sessions from a fully caller-configured Server
// (timeouts, runtime options) on an ephemeral port.
func startOptServer(t *testing.T, srv *Server, queries ...string) string {
	t.Helper()
	for _, q := range queries {
		stmt, err := greta.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		srv.Statements = append(srv.Statements, stmt)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestIdleTimeout checks a silent client is cut off with a clean
// {"error":"timeout"} line followed by connection close — not a silent
// hang and not a done summary (nothing was flushed).
func TestIdleTimeout(t *testing.T) {
	addr := startOptServer(t, &Server{IdleTimeout: 60 * time.Millisecond},
		"RETURN COUNT(*) PATTERN A+")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	dec := json.NewDecoder(conn)
	var o struct {
		Error string `json:"error"`
		Done  bool   `json:"done"`
	}
	if err := dec.Decode(&o); err != nil {
		t.Fatalf("reading timeout line: %v", err)
	}
	if o.Error != "timeout" || o.Done {
		t.Fatalf("first line after idling = %+v, want error=timeout", o)
	}
	if err := dec.Decode(&o); err == nil {
		t.Errorf("connection stayed open after the timeout line: %+v", o)
	}
}

// TestCheckpointCommand drives {"cmd":"checkpoint"}: the acknowledged
// snapshot must be restorable offline, and the session keeps serving.
func TestCheckpointCommand(t *testing.T) {
	dir := t.TempDir()
	srv := &Server{
		RuntimeOptions: func() []greta.RuntimeOption {
			return []greta.RuntimeOption{greta.WithCheckpoint(dir, 1<<40)}
		},
	}
	addr := startOptServer(t, srv, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for tm := int64(1); tm <= 12; tm++ {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint command: %v", err)
	}
	// The acknowledged write is durable: an independent Restore sees the
	// session's statement and watermark.
	res, err := greta.Restore(dir)
	if err != nil {
		t.Fatalf("restoring the session checkpoint: %v", err)
	}
	if len(res.Handles) != 1 || res.Handles[0].ID() != "q0" {
		t.Fatalf("restored handles = %+v, want one q0", res.Handles)
	}
	res.Close()
	// The session continued past the checkpoint.
	if err := c.Send("A", 13, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, events, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if events != 13 || len(results) == 0 {
		t.Errorf("post-checkpoint session: events=%d results=%+v", events, results)
	}
}

// TestCheckpointDegrades covers the failure paths: a write failure and
// a server with no checkpoint configuration both surface as warn-backed
// errors, and in both cases the session keeps serving.
func TestCheckpointDegrades(t *testing.T) {
	// Shadow the checkpoint directory's parent with a regular file so
	// every write fails at MkdirAll.
	shadow := filepath.Join(t.TempDir(), "shadow")
	if err := os.WriteFile(shadow, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		RuntimeOptions: func() []greta.RuntimeOption {
			return []greta.RuntimeOption{greta.WithCheckpoint(filepath.Join(shadow, "ck"), 1<<40)}
		},
	}
	addr := startOptServer(t, srv, "RETURN COUNT(*) PATTERN A+")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("A", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err == nil {
		t.Fatal("failed checkpoint write must surface to the client")
	}
	if len(c.Warnings()) == 0 {
		t.Error("degraded checkpoint left no warn diagnostic")
	}
	if err := c.Send("A", 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, events, err := c.Flush()
	if err != nil || events != 2 || len(results) != 1 {
		t.Errorf("session after degraded checkpoint: results=%+v events=%d err=%v", results, events, err)
	}

	// No RuntimeOptions at all: checkpoint is unconfigured.
	addr2 := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+")
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Checkpoint(); err == nil {
		t.Error("checkpoint on an unconfigured server must report an error")
	}
	if err := c2.Send("A", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, events, err := c2.Flush(); err != nil || events != 1 {
		t.Errorf("session after unconfigured checkpoint: events=%d err=%v", events, err)
	}
}

// reserveAddr grabs an ephemeral address and frees it, so dials hit
// connection-refused until the test brings a server up on it.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startLateServer brings srv up on addr after the given delay.
func startLateServer(t *testing.T, srv *Server, addr string, delay time.Duration) {
	t.Helper()
	t.Cleanup(func() { srv.Close() })
	go func() {
		time.Sleep(delay)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		srv.Serve(ln) //nolint:errcheck
	}()
}

// TestDialContextBackoff checks DialContext retries connection-refused
// with backoff until the server appears, and gives up cleanly when the
// context expires first.
func TestDialContextBackoff(t *testing.T) {
	addr := reserveAddr(t)
	stmt, err := greta.Compile("RETURN COUNT(*) PATTERN A+")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Statements: []*greta.Statement{stmt}}
	startLateServer(t, srv, addr, 80*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatalf("DialContext did not retry to success: %v", err)
	}
	defer c.Close()
	if err := c.Send("A", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, events, err := c.Flush(); err != nil || events != 1 {
		t.Errorf("session over retried dial: events=%d err=%v", events, err)
	}

	// A dead address with a short deadline: the retry loop must stop
	// with the context error instead of spinning.
	dead := reserveAddr(t)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := DialContext(ctx2, dead); err == nil {
		t.Error("dial to a dead address must fail once the context expires")
	}
}

// TestLazyDialRetry checks a lazily-dialed client connects on first
// use, retrying under the operation's context.
func TestLazyDialRetry(t *testing.T) {
	addr := reserveAddr(t)
	srv := &Server{AllowRegister: true}
	startLateServer(t, srv, addr, 60*time.Millisecond)

	c := LazyDial(addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	id, err := c.RegisterContext(ctx, "RETURN COUNT(*) PATTERN A+")
	if err != nil {
		t.Fatalf("RegisterContext over lazy dial: %v", err)
	}
	if id != "q0" {
		t.Errorf("registered id = %q, want q0", id)
	}
	if err := c.SendContext(ctx, "A", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, events, err := c.Flush()
	if err != nil || events != 1 || len(results) != 1 {
		t.Errorf("lazy session: results=%+v events=%d err=%v", results, events, err)
	}
}

// TestRegisterAfterDropNotMisattributed locks in the warn/error split:
// a register command issued right after an out-of-order drop must see
// its own acknowledgement, not the drop diagnostic.
func TestRegisterAfterDropNotMisattributed(t *testing.T) {
	addr := startRuntimeServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("A", 10, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 2, nil, nil); err != nil { // dropped, emits a warn line
		t.Fatal(err)
	}
	id, err := c.Register("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	if err != nil {
		t.Fatalf("register misattributed the drop diagnostic: %v", err)
	}
	if id != "q1" {
		t.Errorf("registered id = %q, want q1", id)
	}
	if err := c.Send("A", 15, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Window 1 ([10,20)): q0 saw {a10, a15} → 3 trends; q1 registered
	// at watermark 10 saw only a15 → 1 trend.
	byStmt := map[string]float64{}
	for _, r := range results {
		if r.Wid == 1 {
			byStmt[r.Stmt] = r.Values[0]
		}
	}
	if byStmt["q0"] != 3 || byStmt["q1"] != 1 {
		t.Errorf("window-1 counts per statement = %v, want q0:3 q1:1 (all %+v)", byStmt, results)
	}
}
