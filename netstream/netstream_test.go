package netstream

import (
	"fmt"
	"net"
	"testing"

	"github.com/greta-cep/greta"
)

func startServer(t *testing.T, qsrc string, slack greta.Time) (addr string, srv *Server) {
	t.Helper()
	stmt, err := greta.Compile(qsrc)
	if err != nil {
		t.Fatal(err)
	}
	srv = &Server{
		NewEngine: func() *greta.Engine { return stmt.NewEngine() },
		Slack:     slack,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

func TestEndToEndSession(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*), SUM(A.x) PATTERN (SEQ(A+, B))+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The Fig. 12 stream: expect COUNT(*)=11, SUM(A.x)=100.
	send := func(typ string, tm int64, x float64) {
		attrs := map[string]float64{}
		if x != 0 {
			attrs["x"] = x
		}
		if err := c.Send(typ, tm, attrs, nil); err != nil {
			t.Fatal(err)
		}
	}
	send("A", 1, 5)
	send("B", 2, 0)
	send("A", 3, 6)
	send("A", 4, 4)
	send("B", 7, 0)
	results, events, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if events != 5 {
		t.Errorf("events = %d, want 5", events)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Values[0] != 11 || results[0].Values[1] != 100 {
		t.Errorf("values = %v, want [11 100]", results[0].Values)
	}
}

func TestStreamingWindowResults(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, tm := range []int64{1, 5, 12, 25} {
		if err := c.Send("A", tm, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0 ([0,10): a1,a5 -> 3 trends), 1 ([10,20): a12 -> 1),
	// 2 ([20,30): a25 -> 1).
	if len(results) != 3 {
		t.Fatalf("results = %+v, want 3 windows", results)
	}
	if results[0].Values[0] != 3 {
		t.Errorf("window 0 count = %v, want 3", results[0].Values[0])
	}
}

func TestReorderSlack(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN SEQ(A, B)", 10)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// B arrives before A but carries a later timestamp after reordering
	// the pair forms one match.
	if err := c.Send("B", 5, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("A", 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Values[0] != 1 {
		t.Errorf("results = %+v, want one match", results)
	}
}

func TestBadInputReported(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if _, _, err := c.Flush(); err == nil {
		t.Error("expected protocol error for malformed event")
	}
}

func TestMissingTypeReported(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Flush(); err == nil {
		t.Error("expected error for missing type")
	}
}

func TestConcurrentSessions(t *testing.T) {
	addr, _ := startServer(t, "RETURN COUNT(*) PATTERN A+", 0)
	done := make(chan error, 4)
	for s := 0; s < 4; s++ {
		go func(n int) {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 1; i <= n; i++ {
				if err := c.Send("A", int64(i), nil, nil); err != nil {
					done <- err
					return
				}
			}
			results, _, err := c.Flush()
			if err != nil {
				done <- err
				return
			}
			want := float64(uint64(1)<<uint(n)) - 1
			if len(results) != 1 || results[0].Values[0] != want {
				done <- errorf("session %d: got %+v, want %v", n, results, want)
				return
			}
			done <- nil
		}(3 + s)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func errorf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
