package netstream

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/faultnet"
)

// batchFrame is one columnar frame: a contiguous run of same-type rows.
type batchFrame struct {
	typ   string
	times []int64
	price []float64
	co    []string
}

// frameStream slices a generated stream into columnar frames, breaking
// on type changes and at rowCap rows.
func frameStream(evs []testEvt, rowCap int) []batchFrame {
	var frames []batchFrame
	for _, e := range evs {
		if n := len(frames); n == 0 || frames[n-1].typ != e.typ || len(frames[n-1].times) >= rowCap {
			frames = append(frames, batchFrame{typ: e.typ})
		}
		cur := &frames[len(frames)-1]
		cur.times = append(cur.times, e.tm)
		cur.price = append(cur.price, e.price)
		cur.co = append(cur.co, e.co)
	}
	return frames
}

func sendFrame(c *Client, fr batchFrame) error {
	return c.SendBatch(fr.typ, fr.times,
		map[string][]float64{"price": fr.price},
		map[string][]string{"company": fr.co})
}

// runBatchResumable drives one resumable session over columnar batch
// frames on a fault-injected connection: the link is severed at frame
// boundary killAt (or mid-line once writeBudget bytes have gone out),
// Resume heals it, and the session is flushed. killAt < 0 and
// writeBudget <= 0 run uninterrupted.
func runBatchResumable(t *testing.T, addr string, frames []batchFrame, killAt int, writeBudget int64) ([]WireResult, *WireDone) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	f := faultnet.New()
	c := NewClient(f.Conn(raw))
	c.addr = addr
	defer c.Close()
	if _, err := c.EnableResume(ctx); err != nil {
		t.Fatalf("EnableResume: %v", err)
	}
	if writeBudget > 0 {
		f.CutAfterWrites(writeBudget)
	}
	for i, fr := range frames {
		if i == killAt {
			f.Cut()
			if err := c.Resume(ctx); err != nil {
				t.Fatalf("Resume at frame %d: %v", i, err)
			}
		}
		if err := sendFrame(c, fr); err != nil {
			// The torn write revealed the cut; the whole frame is already
			// in the resend ring under one seq, so healing replays it.
			if err := c.Resume(ctx); err != nil {
				t.Fatalf("Resume after torn frame %d: %v", i, err)
			}
		}
	}
	if killAt == len(frames) {
		f.Cut()
		if err := c.Resume(ctx); err != nil {
			t.Fatalf("Resume at final boundary: %v", err)
		}
	}
	results, _, err := c.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return results, c.Summary()
}

// TestBatchResumeDifferential pins frame-level exactly-once: a batch
// session is killed at every frame boundary (and torn mid-frame at
// several byte offsets), resumed, and must match an uninterrupted
// batch run bit for bit — a duplicated or dropped frame would shift
// every aggregate. The uninterrupted batch run itself must match the
// per-event path's results (same stream, event by event).
func TestBatchResumeDifferential(t *testing.T) {
	const q = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	const slack = 4
	srv := &Server{Slack: slack, Linger: time.Minute}
	addr := startResumeServer(t, srv, q)
	evs := genStream(40, slack, 11)
	frames := frameStream(evs, 7)

	wantRes, wantSum := runBatchResumable(t, addr, frames, -1, 0)

	// Cross-path check: frames decode to the same events the per-event
	// path would send. (Results only — the columnar ingest path counts
	// prefilter work differently, so engine stats are not comparable.)
	evRes, _ := runResumable(t, addr, evs, -1, 0)
	sameResults(t, "batch-vs-events", wantRes, evRes)

	for killAt := 0; killAt <= len(frames); killAt++ {
		label := fmt.Sprintf("kill@frame%d", killAt)
		gotRes, gotSum := runBatchResumable(t, addr, frames, killAt, 0)
		sameResults(t, label, gotRes, wantRes)
		sameSummary(t, label, gotSum, wantSum)
	}
	for _, budget := range []int64{80, 400, 900} {
		label := fmt.Sprintf("torn@%d", budget)
		gotRes, gotSum := runBatchResumable(t, addr, frames, -1, budget)
		sameResults(t, label, gotRes, wantRes)
		sameSummary(t, label, gotSum, wantSum)
	}
}

// TestBatchCheckpointMidFrameRestore crashes the server while its
// latest scheduled snapshot landed mid-frame: the snapshot's meta
// records the frame's row prefix (FrameRows), the restored session
// skips exactly that prefix when the client's resume replays the
// frame, and the run must match an uninterrupted reference bit for
// bit — row-exact exactly-once across a process restart.
func TestBatchCheckpointMidFrameRestore(t *testing.T) {
	const q = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	const slack = 4
	evs := genStream(48, slack, 22)
	frames := frameStream(evs, 7)
	crashAt := len(frames) * 3 / 4

	mkServer := func(dir string) *Server {
		return &Server{
			Slack:  slack,
			Linger: time.Minute,
			RuntimeOptions: func() []greta.RuntimeOption {
				// Armed checkpointing puts batch frames on the row-at-a-time
				// path so a snapshot can fire inside a frame.
				return []greta.RuntimeOption{greta.WithCheckpoint(dir, 10)}
			},
		}
	}

	// Reference: identical configuration (checkpointing armed, so the
	// same ingest path), uninterrupted.
	refAddr := startResumeServer(t, mkServer(t.TempDir()), q)
	wantRes, wantSum := runBatchResumable(t, refAddr, frames, -1, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	dir := t.TempDir()
	addr1 := startResumeServer(t, mkServer(dir), q)
	raw, err := net.Dial("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	f := faultnet.New()
	c := NewClient(f.Conn(raw))
	c.addr = addr1
	defer c.Close()
	sid, err := c.EnableResume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames[:crashAt] {
		if err := sendFrame(c, fr); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// Crash: sever the connection and abandon the first server entirely.
	f.Cut()

	// Wait for the server to drain its read buffer (the cut is client
	// side), then assert the surviving snapshot genuinely fell inside a
	// frame. Each probe restores a fresh copy of the directory: closing
	// the probe runtime barriers it, which would otherwise write an
	// advanced generation and poison the restart below.
	var m sessionMeta
	stable := 0
	var lastEv uint64
	for deadline := time.Now().Add(5 * time.Second); stable < 5; {
		if time.Now().After(deadline) {
			t.Fatalf("server never quiesced (last snapshot evID %d)", lastEv)
		}
		probe, err := greta.Restore(copyDir(t, dir))
		if err == nil && probe.Meta != nil {
			m = sessionMeta{}
			if err := json.Unmarshal(probe.Meta, &m); err != nil {
				t.Fatalf("bad session meta: %v", err)
			}
			probe.Close()
			if m.EvID == lastEv {
				stable++
			} else {
				lastEv, stable = m.EvID, 0
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m.FrameRows == 0 {
		t.Fatalf("latest snapshot is frame-aligned (evID %d); pick parameters so one fires mid-frame", m.EvID)
	}

	srv2 := mkServer(dir)
	addr2 := startResumeServer(t, srv2)
	restored, err := srv2.RestoreSession(dir)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	if restored != sid {
		t.Fatalf("restored session id %q, want %q", restored, sid)
	}
	c.addr = addr2
	if err := c.Resume(ctx); err != nil {
		t.Fatalf("Resume onto restored server: %v", err)
	}
	for i, fr := range frames[crashAt:] {
		if err := sendFrame(c, fr); err != nil {
			t.Fatalf("frame %d after restore: %v", crashAt+i, err)
		}
	}
	gotRes, _, err := c.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sameResults(t, "mid-frame restart", gotRes, wantRes)
	sameSummary(t, "mid-frame restart", c.Summary(), wantSum)
}
