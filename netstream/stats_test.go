package netstream

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/faultnet"
)

// TestSessionStats drives a resumable session through the stats frame:
// the server-side cursors and runtime gauges must reflect the feed,
// and a severed-and-resumed connection must show up in Resumes and in
// the server's TraceSessionResume hook.
func TestSessionStats(t *testing.T) {
	var mu sync.Mutex
	var resumeTraces []greta.TraceEvent
	srv := &Server{
		Linger: 30 * time.Second,
		TraceHook: func(te greta.TraceEvent) {
			if te.Kind == greta.TraceSessionResume {
				mu.Lock()
				resumeTraces = append(resumeTraces, te)
				mu.Unlock()
			}
		},
	}
	addr := startResumeServer(t, srv,
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 20 SLIDE 5")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	f := faultnet.New()
	c := NewClient(f.Conn(raw))
	c.addr = addr
	defer c.Close()
	if _, err := c.EnableResume(ctx); err != nil {
		t.Fatal(err)
	}

	evs := genStream(200, 0, 7)
	for _, e := range evs[:120] {
		if err := c.Send(e.typ, e.tm, map[string]float64{"price": e.price}, map[string]string{"company": e.co}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Session != c.SessionID() {
		t.Errorf("stats session %q, client session %q", st.Session, c.SessionID())
	}
	if st.Processed+st.Dropped != 120 {
		t.Errorf("processed %d + dropped %d != 120 sent", st.Processed, st.Dropped)
	}
	if st.LastSeq == 0 {
		t.Error("LastSeq still 0 after 120 sequenced sends")
	}
	if st.Statements != 1 {
		t.Errorf("Statements = %d, want 1", st.Statements)
	}
	if st.Watermark < 0 || st.EventTimeMax < st.Watermark {
		t.Errorf("gauges out of order: watermark %d, max %d", st.Watermark, st.EventTimeMax)
	}
	if st.ResumeWindow <= 0 {
		t.Errorf("ResumeWindow = %d on a resumable session", st.ResumeWindow)
	}
	base := st.Resumes // initial attach counts once

	// Sever and heal; the resume must be visible in the cursors.
	f.Cut()
	if err := c.Resume(ctx); err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[120:] {
		if err := c.Send(e.typ, e.tm, map[string]float64{"price": e.price}, map[string]string{"company": e.co}); err != nil {
			if err := c.Resume(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Resumes < base+1 {
		t.Errorf("Resumes = %d after a severed connection, want >= %d", st2.Resumes, base+1)
	}
	if st2.Processed+st2.Dropped != 200 {
		t.Errorf("processed %d + dropped %d != 200 sent", st2.Processed, st2.Dropped)
	}
	if st2.Processed < st.Processed || st2.Watermark < st.Watermark {
		t.Errorf("cursors moved backwards across resume: %+v then %+v", st, st2)
	}

	mu.Lock()
	n := len(resumeTraces)
	var sessID string
	if n > 0 {
		sessID = resumeTraces[0].Session
	}
	mu.Unlock()
	if n < int(st2.Resumes) {
		t.Errorf("TraceSessionResume fired %d times, session counted %d attaches", n, st2.Resumes)
	}
	if sessID != c.SessionID() {
		t.Errorf("trace carries session %q, want %q", sessID, c.SessionID())
	}
}
