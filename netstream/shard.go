package netstream

import (
	"encoding/base64"
	"fmt"
	"math"
	"slices"
	"strconv"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/core"
)

// Shard sessions: the server side of a cluster worker link. A
// resumable session flips into shard mode with {"cmd":"shard"} and
// from then on hosts one or more cluster worker slots (core.ShardHost)
// — the multi-process analogue of RunParallel's workers. The driving
// coordinator (see the cluster package) ships unit registrations,
// pre-routed events/batches, per-statement window barriers, and slot
// migrations as seq-numbered frames; the slots answer with durable
// partial windows, barrier acks, and unit stats. Both directions ride
// the ordinary session resume machinery, so a dropped link replays its
// unacked tail and every frame applies exactly once.

// WirePartial is one worker slot's released window: the raw aggregate
// payload (checkpoint codec, base64) of unit SI's window Wid for one
// group, tagged with the slot's home index W so the coordinator merges
// partials in slot order — float results stay bit-identical to a
// single-process run.
type WirePartial struct {
	SI      int    `json:"si"`
	W       int    `json:"w"`
	Group   string `json:"group"`
	Wid     int64  `json:"wid"`
	Payload string `json:"payload"`
}

// WireAck is one worker slot's barrier acknowledgement: slot W has
// released every window of unit SI up to Hi (math.MaxInt64 after a
// flush or close). T echoes the barrier's stream time so the
// coordinator rolls per-slot frontiers into a global low-watermark.
// Partials always precede their covering ack on the wire.
type WireAck struct {
	SI int   `json:"si"`
	W  int   `json:"w"`
	Hi int64 `json:"hi"`
	T  int64 `json:"t,omitempty"`
}

// WireUnitStats carries one worker slot's final engine counters for a
// closed (or end-of-stream flushed) unit, for the coordinator's stats
// fold.
type WireUnitStats struct {
	SI    int         `json:"si"`
	W     int         `json:"w"`
	Stats greta.Stats `json:"stats"`
}

// WireShardInfo acknowledges a shard handshake or an adopt: the
// cluster's worker-slot modulus and the slots this session hosts now.
type WireShardInfo struct {
	Count   int   `json:"count"`
	Workers []int `json:"workers"`
}

// WireHandoff carries a draining session's slot snapshots (worker slot
// → base64 blob), produced by {"cmd":"handoff"} and re-planted
// elsewhere with {"cmd":"adopt"}. EvID is the donor session's event-ID
// counter: the adopting session bumps its own counter past it, so
// post-migration events keep sorting after pre-migration vertices in
// the engines' ID-tie-broken summary trees (fold order, and so float
// bit-identity, depends on it).
type WireHandoff struct {
	Blobs map[string]string `json:"blobs"`
	EvID  uint64            `json:"evid,omitempty"`
}

// shardState is a shard-mode session's slot table.
type shardState struct {
	n0    int                     // cluster worker-slot modulus (fixed at handshake)
	hosts map[int]*core.ShardHost // worker slot → host
}

// slots returns the hosted worker slots, sorted — every fan-out
// iterates in slot order so durable output is deterministic.
func (sh *shardState) slots() []int {
	ws := make([]int, 0, len(sh.hosts))
	for w := range sh.hosts {
		ws = append(ws, w)
	}
	slices.Sort(ws)
	return ws
}

// discardLocked silently drops every hosted slot (session teardown or
// finish; a handed-off slot's state lives on elsewhere).
func (sh *shardState) discardLocked() {
	for _, h := range sh.hosts {
		h.Discard()
	}
	sh.hosts = map[int]*core.ShardHost{}
}

// shardFrame reports whether cmd is routed to the shard handler once
// shard mode is on. Event ("") and batch lines are included — they
// carry coordinator route info instead of feeding the session runtime.
func shardFrame(cmd string) bool {
	switch cmd {
	case "", "batch", "sreg", "sclose", "barrier", "eos", "handoff", "adopt":
		return true
	}
	return false
}

// handleShardLine processes one shard-mode frame under sess.mu. Every
// shard frame — lifecycle commands included — rides the client-seq
// discipline, so a resumed link replays its unacked tail and each
// frame applies exactly once.
func (sess *session) handleShardLine(we *WireEvent) (stop bool) {
	if we.Cmd == "shard" {
		switch {
		case !sess.srv.AllowShard:
			_ = sess.sendLocked(wireOut{Error: "shard: disabled on this server"}, false)
			return false
		case !sess.resumable:
			_ = sess.sendLocked(wireOut{Error: `shard: requires a resumable session (send {"cmd":"session"} first)`}, false)
			return false
		case sess.shard != nil:
			_ = sess.sendLocked(wireOut{Error: "shard: already enabled"}, false)
			return false
		}
	} else if sess.shard == nil {
		_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("%q: not a shard session", we.Cmd)}, false)
		return false
	}
	switch {
	case we.Seq == 0:
		_ = sess.sendLocked(wireOut{Error: "shard frame missing seq"}, false)
		return false
	case we.Seq <= sess.lastSeq:
		return false // duplicate from a resume replay: already applied
	case we.Seq != sess.lastSeq+1:
		_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("sequence gap: got %d, want %d", we.Seq, sess.lastSeq+1)}, false)
		return false
	}
	sess.applyShardFrameLocked(we)
	sess.lastSeq = we.Seq
	return false
}

// applyShardFrameLocked dispatches one admitted (in-sequence, not
// duplicate) shard frame; sess.mu held. Failures surface as error
// lines — the coordinator treats them as fatal link faults — but the
// frame's seq is consumed either way, keeping the cursor contiguous.
func (sess *session) applyShardFrameLocked(we *WireEvent) {
	switch we.Cmd {
	case "shard":
		if we.Count <= 0 {
			_ = sess.sendLocked(wireOut{Error: "shard: count must be positive"}, false)
			return
		}
		sh := &shardState{n0: we.Count, hosts: map[int]*core.ShardHost{}}
		for _, w := range we.Workers {
			if w < 0 || w >= we.Count {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("shard: worker slot %d out of range [0,%d)", w, we.Count)}, false)
				return
			}
			if _, dup := sh.hosts[w]; dup {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("shard: duplicate worker slot %d", w)}, false)
				return
			}
			sh.hosts[w] = core.NewShardHost(w, sess.emitPartial)
		}
		sess.shard = sh
		_ = sess.sendLocked(wireOut{Shard: &WireShardInfo{Count: sh.n0, Workers: sh.slots()}}, true)
	case "sreg":
		// Fan the unit out to every hosted slot, stamping the
		// coordinator's watermark (we.Time) first so a mid-stream
		// registration cuts at the same instant on every slot.
		for _, w := range sess.shard.slots() {
			h := sess.shard.hosts[w]
			h.ObserveTime(we.Time)
			if err := h.Register(we.SI, we.GI, we.Query, we.ID, we.Exact, we.Force); err != nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("sreg %s: %v", we.ID, err)}, false)
				return
			}
		}
		_ = sess.sendLocked(wireOut{Registered: &WireRegistered{ID: we.ID, Query: we.Query}}, true)
	case "sclose":
		for _, w := range sess.shard.slots() {
			h := sess.shard.hosts[w]
			st, err := h.CloseUnit(we.SI)
			if err != nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("sclose %d: %v", we.SI, err)}, false)
				return
			}
			// Open windows flushed as partials above; the MaxInt64 ack
			// releases them all, then the final counters fold.
			_ = sess.sendLocked(wireOut{Ack: &WireAck{SI: we.SI, W: w, Hi: math.MaxInt64}}, true)
			_ = sess.sendLocked(wireOut{UnitStats: &WireUnitStats{SI: we.SI, W: w, Stats: st}}, true)
		}
	case "barrier":
		for _, w := range sess.shard.slots() {
			sess.shard.hosts[w].Barrier(we.SI, we.Time)
			_ = sess.sendLocked(wireOut{Ack: &WireAck{SI: we.SI, W: w, Hi: we.Hi, T: we.Time}}, true)
		}
	case "eos":
		for _, w := range sess.shard.slots() {
			h := sess.shard.hosts[w]
			for _, si := range h.Units() {
				h.FlushUnit(si)
				st, _ := h.UnitStats(si)
				_ = sess.sendLocked(wireOut{Ack: &WireAck{SI: si, W: w, Hi: math.MaxInt64}}, true)
				_ = sess.sendLocked(wireOut{UnitStats: &WireUnitStats{SI: si, W: w, Stats: st}}, true)
			}
		}
	case "handoff":
		sh := sess.shard
		blobs := make(map[string]string, len(sh.hosts))
		for _, w := range sh.slots() {
			b, err := sh.hosts[w].Snapshot()
			if err != nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("handoff: slot %d: %v", w, err)}, false)
				return
			}
			blobs[strconv.Itoa(w)] = base64.StdEncoding.EncodeToString(b)
		}
		// The snapshots are on the durable output path (replayed on
		// resume) before the slots are dropped, so the state survives a
		// link break mid-handoff.
		for _, h := range sh.hosts {
			h.Discard()
		}
		sh.hosts = map[int]*core.ShardHost{}
		_ = sess.sendLocked(wireOut{Handoff: &WireHandoff{Blobs: blobs, EvID: sess.evID}}, true)
	case "adopt":
		sh := sess.shard
		if we.EvID > sess.evID {
			sess.evID = we.EvID
		}
		for ws, blob := range we.Blobs {
			w, err := strconv.Atoi(ws)
			if err != nil || w < 0 || w >= sh.n0 {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("adopt: bad worker slot %q", ws)}, false)
				return
			}
			if _, dup := sh.hosts[w]; dup {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("adopt: slot %d already hosted", w)}, false)
				return
			}
			raw, err := base64.StdEncoding.DecodeString(blob)
			if err != nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("adopt: slot %d: %v", w, err)}, false)
				return
			}
			h, err := core.AdoptShardHost(raw, sess.emitPartial)
			if err != nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("adopt: slot %d: %v", w, err)}, false)
				return
			}
			if h.W() != w {
				h.Discard()
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("adopt: blob for slot %d keyed as %d", h.W(), w)}, false)
				return
			}
			sh.hosts[w] = h
		}
		_ = sess.sendLocked(wireOut{Shard: &WireShardInfo{Count: sh.n0, Workers: sh.slots()}}, true)
	case "batch":
		sess.applyShardBatchLocked(we)
	case "":
		sess.applyShardEventLocked(we)
	}
}

// emitPartial ships one worker-slot partial window to the coordinator.
// It runs inside engine calls made under sess.mu (barrier advance,
// flush, close), so the durable partial is ordered before the covering
// ack on the wire.
func (sess *session) emitPartial(w, si int, r greta.Result) {
	b, err := core.MarshalPayload(r.Payload)
	if err != nil {
		_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("partial encode: %v", err)}, false)
		return
	}
	_ = sess.sendLocked(wireOut{Partial: &WirePartial{
		SI: si, W: w, Group: r.Group, Wid: r.Wid,
		Payload: base64.StdEncoding.EncodeToString(b),
	}}, true)
}

// applyShardEventLocked applies one pre-routed single event: each
// (group, hash) pair targets the hosted slot hash%n0 — the same
// placement RunParallel's feedWorkers computes, so an N-shard cluster
// partitions identically to an N-worker single-process run.
func (sess *session) applyShardEventLocked(we *WireEvent) {
	if we.Type == "" {
		_ = sess.sendLocked(wireOut{Error: "event missing type"}, false)
		return
	}
	if len(we.RH) != len(we.RG) {
		_ = sess.sendLocked(wireOut{Error: "event: rg/rh length mismatch"}, false)
		return
	}
	sess.evID++
	ev := &greta.Event{ID: sess.evID, Type: greta.Type(we.Type), Time: we.Time, Attrs: we.Attrs, Str: we.Str}
	for k, gi := range we.RG {
		h, err := strconv.ParseUint(we.RH[k], 16, 64)
		if err != nil {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("event: bad route hash %q", we.RH[k])}, false)
			return
		}
		host := sess.shard.hosts[int(h%uint64(sess.shard.n0))]
		if host == nil {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("event: slot %d not hosted here", int(h%uint64(sess.shard.n0)))}, false)
			return
		}
		var gis [1]int
		var hs [1]uint64
		gis[0], hs[0] = gi, h
		host.Apply(ev, gis[:], hs[:])
	}
	sess.processed++
}

// applyShardBatchLocked applies one pre-routed columnar batch frame.
// Route info comes per row: either GI+RH (every row in route group GI,
// one hash per row — the common single-signature case) or RGs/RHs
// (per-row group lists). Rows bind to a cached schema and keep their
// own value slices — the slots' graphs retain event pointers.
func (sess *session) applyShardBatchLocked(we *WireEvent) {
	if we.Type == "" {
		_ = sess.sendLocked(wireOut{Error: "batch missing type"}, false)
		return
	}
	n := len(we.Times)
	for a, col := range we.Cols {
		if len(col) != n {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: column %q has %d values, want %d", a, len(col), n)}, false)
			return
		}
	}
	for a, col := range we.SCols {
		if len(col) != n {
			_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: column %q has %d values, want %d", a, len(col), n)}, false)
			return
		}
	}
	multi := we.RGs != nil
	if multi {
		if len(we.RGs) != n || len(we.RHs) != n {
			_ = sess.sendLocked(wireOut{Error: "batch: rgs/rhs length mismatch"}, false)
			return
		}
	} else if len(we.RH) != n {
		_ = sess.sendLocked(wireOut{Error: "batch: rh length mismatch"}, false)
		return
	}
	if n == 0 {
		return
	}
	sch := sess.schemaFor(we)
	sh := sess.shard
	for i := 0; i < n; i++ {
		num := make([]float64, len(sch.Numeric))
		for j, a := range sch.Numeric {
			num[j] = we.Cols[a][i]
		}
		strs := make([]string, len(sch.Strings))
		for j, a := range sch.Strings {
			strs[j] = we.SCols[a][i]
		}
		sess.evID++
		ev := &greta.Event{ID: sess.evID, Type: greta.Type(we.Type), Time: we.Times[i], Sch: sch, Num: num, StrV: strs}
		apply := func(gi int, hx string) bool {
			h, err := strconv.ParseUint(hx, 16, 64)
			if err != nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: bad route hash %q", hx)}, false)
				return false
			}
			host := sh.hosts[int(h%uint64(sh.n0))]
			if host == nil {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: slot %d not hosted here", int(h%uint64(sh.n0)))}, false)
				return false
			}
			var gis [1]int
			var hs [1]uint64
			gis[0], hs[0] = gi, h
			host.Apply(ev, gis[:], hs[:])
			return true
		}
		if multi {
			if len(we.RHs[i]) != len(we.RGs[i]) {
				_ = sess.sendLocked(wireOut{Error: fmt.Sprintf("batch: row %d rg/rh length mismatch", i)}, false)
				return
			}
			for k, gi := range we.RGs[i] {
				if !apply(gi, we.RHs[i][k]) {
					return
				}
			}
		} else {
			if !apply(we.GI, we.RH[i]) {
				return
			}
		}
		sess.processed++
	}
}
