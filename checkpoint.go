package greta

import (
	"io"
	"sync"

	"github.com/greta-cep/greta/internal/checkpoint"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
)

// ErrNoCheckpoint reports a Restore from a directory holding no valid
// checkpoint file.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// WithCheckpoint arms watermark-aligned durability: before applying
// the first event at or past each multiple of every, the runtime
// advances all statements to that boundary and atomically writes a
// checksummed snapshot of its full recoverable state into dir (temp
// file + fsync + rename; the two most recent generations are kept).
// After a crash, Restore(dir) rebuilds the runtime; replaying every
// event with Time >= the returned ReplayFrom reproduces the
// uninterrupted run bit for bit — results, Stats counters, and summary
// folds. every must be positive (NewRuntime panics otherwise); pick a
// multiple of the statements' SLIDE so boundaries fall where pane
// state is minimal. Snapshot writes happen on the ingest path but
// only at boundaries — the steady per-event path stays allocation-
// and syscall-free. A failed write is reported to the
// WithCheckpointErrors callback and does not stop ingestion: the
// previous generation remains valid, so a fault costs at most the
// events since the last successful checkpoint — which the feeder was
// replaying anyway.
func WithCheckpoint(dir string, every Time) RuntimeOption {
	return func(c *runtimeConfig) {
		c.ckDir = dir
		c.ckEvery = every
	}
}

// WithCheckpointErrors routes checkpoint-write failures to f (they are
// otherwise silent: ingestion continues on the previous generation).
// f runs on the ingest path with the runtime lock held — it must not
// call back into the Runtime or its Handles.
func WithCheckpointErrors(f func(error)) RuntimeOption {
	return func(c *runtimeConfig) { c.ckErr = f }
}

// WithCheckpointMeta registers an opaque session-meta provider: f runs
// at snapshot-encode time (on the ingest path, runtime lock held — it
// must not call back into the Runtime) and its bytes are embedded in
// the checkpoint header, surfacing again as Restored.Meta. Serving
// layers use it to persist session identity and sequence cursors
// atomically with the engine state they describe (netstream stores the
// session id and last-applied event sequence this way). nil clears the
// provider; a restored runtime re-encodes the snapshot's blob until a
// new provider is set (SetCheckpointMeta).
func WithCheckpointMeta(f func() []byte) RuntimeOption {
	return func(c *runtimeConfig) { c.ckMeta = f }
}

// SetCheckpointMeta replaces the session-meta provider after
// construction or restore (see WithCheckpointMeta).
func (rt *Runtime) SetCheckpointMeta(f func() []byte) { rt.inner.SetCheckpointMeta(f) }

// armCheckpoint wires a generational Store under dir into the core
// checkpoint schedule. from < 0 starts a fresh schedule; a restored
// runtime passes its replay bound so the cadence resumes unchanged.
func (rt *Runtime) armCheckpoint(dir string, every, from Time, onErr func(error)) error {
	store := &checkpoint.Store{Dir: dir}
	save := func(_ event.Time, snapshot func(io.Writer) error) error {
		_, err := store.Write(snapshot)
		return err
	}
	return rt.inner.SetCheckpoint(every, from, save, onErr)
}

// CheckpointArmed reports whether a scheduled checkpoint cadence is
// armed on this runtime (WithCheckpoint, or a Restore that re-armed
// the snapshot's interval). Serving layers use it to decide whether a
// snapshot can fire mid-way through a multi-row ingest frame.
func (rt *Runtime) CheckpointArmed() bool { return rt.inner.CheckpointArmed() }

// Checkpoint writes an immediate snapshot (outside the boundary
// schedule) to the directory configured by WithCheckpoint, returning
// an error if checkpointing is not configured or the write fails.
// Unlike scheduled boundary snapshots, replay after restoring a manual
// checkpoint is exact only when event timestamps strictly increase or
// the stream is quiescent at the call; with ties at the current
// watermark, windows already closed for the snapshotted prefix are
// closed again during replay. netstream exposes this as the
// {"cmd":"checkpoint"} command.
func (rt *Runtime) Checkpoint() error { return rt.inner.CheckpointNow() }

// Restored is a runtime rebuilt from a checkpoint: the Runtime itself
// (embedded — feed it directly), one Handle per statement in original
// registration order, and the inclusive replay bound. The recovery
// contract: feed every original event with Time >= ReplayFrom and the
// results, Stats counters, and summary folds match the uninterrupted
// run bit for bit.
//
// Restored handles deliver replayed and future results through the
// usual OnResult/Results surfaces; for statements registered with
// retention the results emitted before the checkpoint are available
// again through Results (in group/window order — emission order is not
// recorded). Result callbacks are not persisted: re-register them via
// Handle.OnResult before feeding the replay. Undelivered live-iterator
// tails (WithoutRetention) are intentionally not checkpointed — their
// contract is bounded memory, not durability.
type Restored struct {
	*Runtime
	Handles    []*Handle
	ReplayFrom Time
	// Meta is the opaque session-meta blob the snapshot carried
	// (WithCheckpointMeta); nil when none was set.
	Meta []byte
	// ReorderPending reports how many in-flight events were rehydrated
	// into the reorder buffer (the snapshot's disorder window). With
	// slack armed, the time-based ReplayFrom contract extends to them:
	// replayed events that were already pending are deduplicated by
	// event ID, so feeding Time >= ReplayFrom neither loses nor doubles
	// the window — sequence-based replay (netstream sessions) needs no
	// dedup at all.
	ReorderPending int
}

// Restore rebuilds a Runtime from the newest valid checkpoint in dir,
// verifying checksums and falling back to the previous generation if
// the newest file is torn or corrupt (ErrNoCheckpoint when none
// survives). Checkpointing is re-armed automatically with the interval
// the snapshot was written under, into the same dir — pass
// WithCheckpoint to override either. Statement ids, options, shared
// sub-plan topology, partition state, and watermarks are restored;
// feeding events with Time >= ReplayFrom resumes the run exactly.
func Restore(dir string, opts ...RuntimeOption) (*Restored, error) {
	var cfg runtimeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	store := &checkpoint.Store{Dir: dir}
	body, _, err := store.Load()
	if err != nil {
		return nil, err
	}
	inner, info, err := core.RestoreRuntime(body)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{inner: inner}

	stmts := inner.Statements()
	handles := make([]*Handle, 0, len(stmts))
	for _, st := range stmts {
		plan := st.Plan()
		h := &Handle{
			st:    st,
			stmt:  &Statement{query: plan.Query, plan: plan},
			noBuf: st.NoRetain(),
		}
		h.cond = sync.NewCond(&h.mu)
		if !h.noBuf {
			h.buf = append([]Result(nil), st.Results()...)
		}
		st.OnResult(h.deliver)
		st.OnClose(h.markDone)
		handles = append(handles, h)
	}

	ckDir, every := dir, info.Every
	if cfg.ckDir != "" {
		ckDir = cfg.ckDir
		every = cfg.ckEvery
	}
	if every > 0 {
		if err := rt.armCheckpoint(ckDir, every, info.ReplayFrom, cfg.ckErr); err != nil {
			return nil, err
		}
	}
	if cfg.ckMeta != nil {
		rt.inner.SetCheckpointMeta(cfg.ckMeta)
	}
	if err := rt.armObs(&cfg); err != nil {
		return nil, err
	}
	return &Restored{
		Runtime: rt, Handles: handles, ReplayFrom: info.ReplayFrom,
		Meta: info.Meta, ReorderPending: info.ReorderPending,
	}, nil
}
