// Cluster observability: the coordinator's view of the topology —
// barrier round trips, per-slot ack-frontier lag, frame encode cost
// and volume, link resumes, handoffs. Cells are pre-registered atomic
// counters (the same obs discipline as the runtime's); everything
// positional (lag per slot, watermarks) is sampled by a render-time
// collector under co.mu.
package cluster

import (
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/obs"
)

// coMetrics are the coordinator's hot cells.
type coMetrics struct {
	events     *obs.Counter // events offered to Process
	drops      *obs.Counter // out-of-order drops
	frames     *obs.Counter // sequenced frames sent across all links
	frameBytes *obs.Counter // bytes written to shard links
	barriers   *obs.Counter // barrier fan-outs
	resumes    *obs.Counter // successful link reattaches
	handoffs   *obs.Counter // completed drains

	encDur     *obs.Histogram // per-frame JSON encode latency
	barRTT     *obs.Histogram // barrier fan-out → all-slots-acked round trip
	handoffDur *obs.Histogram // Drain duration (handoff + adopt)
}

// barKey identifies one in-flight barrier: unit index + window id.
type barKey struct {
	si int
	hi int64
}

// barWait tracks one barrier's outstanding slot acks.
type barWait struct {
	t0   time.Time
	seen []bool
	left int
}

// barPendMax bounds the in-flight barrier tracking map; barriers
// beyond it (a badly stalled slot) go unmeasured rather than leaking.
const barPendMax = 4096

func newCoMetrics(reg *obs.Registry) *coMetrics {
	return &coMetrics{
		events:     reg.Counter("greta_cluster_events_total", "events offered to the coordinator", ""),
		drops:      reg.Counter("greta_cluster_events_dropped_total", "events dropped out of order by the coordinator", ""),
		frames:     reg.Counter("greta_cluster_frames_total", "sequenced frames sent to shard links", ""),
		frameBytes: reg.Counter("greta_cluster_frame_bytes_total", "bytes written to shard links", ""),
		barriers:   reg.Counter("greta_cluster_barriers_total", "window-close barrier fan-outs", ""),
		resumes:    reg.Counter("greta_cluster_link_resumes_total", "successful shard-link session resumes", ""),
		handoffs:   reg.Counter("greta_cluster_handoffs_total", "completed slot drains (handoff + adopt)", ""),
		encDur:     reg.Histogram("greta_cluster_frame_encode_seconds", "per-frame JSON encode latency", ""),
		barRTT:     reg.Histogram("greta_cluster_barrier_rtt_seconds", "barrier fan-out to all-slots-acknowledged round trip", ""),
		handoffDur: reg.Histogram("greta_cluster_handoff_seconds", "drain duration (handoff request through adopt ack)", ""),
	}
}

// trackBarrierLocked records a barrier fan-out for RTT measurement.
// co.mu held.
func (co *Coordinator) trackBarrierLocked(si int, hi int64) {
	co.met.barriers.Inc()
	if len(co.barPend) >= barPendMax {
		return
	}
	if co.barPend == nil {
		co.barPend = map[barKey]*barWait{}
	}
	co.barPend[barKey{si, hi}] = &barWait{t0: time.Now(), seen: make([]bool, co.n0), left: co.n0}
}

// ackBarrierLocked credits slot w's acknowledgement to every in-flight
// barrier of unit si at or below hi, observing the round trip when the
// last slot lands. co.mu held.
func (co *Coordinator) ackBarrierLocked(si int, w int, hi int64) {
	for k, bw := range co.barPend {
		if k.si != si || k.hi > hi || bw.seen[w] {
			continue
		}
		bw.seen[w] = true
		if bw.left--; bw.left == 0 {
			co.met.barRTT.Observe(time.Since(bw.t0))
			delete(co.barPend, k)
		}
	}
}

// countingConnWriter counts bytes flowing to a shard link.
type countingConnWriter struct {
	w io.Writer
	n *obs.Counter
}

func (c *countingConnWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}

// Metrics is a consistent snapshot of the coordinator's observability
// counters, taken under its lock.
type Metrics struct {
	Shards int // shard links (drained included)
	Slots  int // worker-slot modulus N0

	Watermark    greta.Time // global event-time frontier (-1 before the first event)
	LowWatermark greta.Time // smallest barrier time every slot acknowledged (-1 before the first)
	// SlotAckLag is each worker slot's ack-frontier lag: Watermark minus
	// the slot's newest acknowledged barrier time (0 when fully caught
	// up or before any events).
	SlotAckLag []int64

	Events     uint64 // events offered to Process
	Dropped    uint64 // out-of-order drops
	Frames     uint64 // sequenced frames sent across all links
	FrameBytes uint64 // bytes written to shard links
	Barriers   uint64 // barrier fan-outs

	BarrierRTTCount uint64        // barriers with all slot acks measured
	BarrierRTTTotal time.Duration // summed fan-out→all-acked round trips
	BarrierRTTMax   time.Duration
	EncodeTotal     time.Duration // summed per-frame encode latency

	Resumes  uint64 // successful link reattaches
	Handoffs uint64 // completed drains
	// LastHandoff is the most recent Drain's duration (0 if none).
	LastHandoff time.Duration

	Warnings int // non-fatal shard diagnostics collected
}

// Metrics returns a consistent snapshot of the coordinator's counters.
// Safe to call concurrently with ingestion.
func (co *Coordinator) Metrics() Metrics {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.metricsLocked()
}

func (co *Coordinator) metricsLocked() Metrics {
	m := Metrics{
		Shards: len(co.links), Slots: co.n0,
		Watermark: co.wm, LowWatermark: -1,
		SlotAckLag:      make([]int64, co.n0),
		Events:          co.met.events.Load(),
		Dropped:         co.met.drops.Load(),
		Frames:          co.met.frames.Load(),
		FrameBytes:      co.met.frameBytes.Load(),
		Barriers:        co.met.barriers.Load(),
		BarrierRTTCount: co.met.barRTT.Count(),
		BarrierRTTTotal: co.met.barRTT.Sum(),
		BarrierRTTMax:   co.met.barRTT.Max(),
		EncodeTotal:     co.met.encDur.Sum(),
		Resumes:         co.met.resumes.Load(),
		Handoffs:        co.met.handoffs.Load(),
		LastHandoff:     co.lastHandoff,
		Warnings:        len(co.warnings),
	}
	low := int64(0)
	for i, t := range co.slotAck {
		if i == 0 || t < low {
			low = t
		}
		if lag := co.wm - t; lag > 0 && co.wm >= 0 {
			m.SlotAckLag[i] = lag
		}
	}
	if co.n0 > 0 {
		m.LowWatermark = low
	}
	return m
}

// registerCollector publishes the positional series (watermarks,
// per-slot lag, topology) sampled under co.mu at scrape time.
func (co *Coordinator) registerCollector() {
	co.reg.Collect(func(e obs.Emitter) {
		m := co.Metrics()
		e.Emit("greta_cluster_shards", "shard links (drained included)", obs.KindGauge, "", float64(m.Shards))
		e.Emit("greta_cluster_slots", "worker-slot modulus N0", obs.KindGauge, "", float64(m.Slots))
		e.Emit("greta_cluster_watermark", "global event-time frontier (-1 before the first event)", obs.KindGauge, "", float64(m.Watermark))
		e.Emit("greta_cluster_low_watermark", "smallest barrier time every slot acknowledged", obs.KindGauge, "", float64(m.LowWatermark))
		e.Emit("greta_cluster_handoff_last_seconds", "duration of the most recent drain", obs.KindGauge, "", m.LastHandoff.Seconds())
		e.Emit("greta_cluster_warnings", "non-fatal shard diagnostics collected", obs.KindGauge, "", float64(m.Warnings))
		for w, lag := range m.SlotAckLag {
			e.Emit("greta_cluster_slot_ack_lag", "worker slot ack-frontier lag behind the global watermark", obs.KindGauge,
				`slot="`+strconv.Itoa(w)+`"`, float64(lag))
		}
	})
}

// MetricsAddr reports the bound address of the Config.MetricsAddr
// listener ("" when none is armed).
func (co *Coordinator) MetricsAddr() string {
	if co.metLn == nil {
		return ""
	}
	return co.metLn.Addr().String()
}

// MetricsHandler returns the coordinator's observability HTTP surface
// (/metrics, /metrics.json, /debug/vars, /debug/pprof/) for mounting
// on a caller-owned server — the embeddable form of Config.MetricsAddr.
func (co *Coordinator) MetricsHandler() http.Handler { return obs.NewMux(co.reg) }

// fireTrace invokes the configured trace hook; co.mu held.
func (co *Coordinator) fireTrace(te greta.TraceEvent) {
	if co.trace != nil {
		co.trace(te)
	}
}
