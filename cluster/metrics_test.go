package cluster_test

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/cluster"
	"github.com/greta-cep/greta/internal/obs"
)

// TestClusterMetrics runs the differential workload on a live 2-shard
// cluster with the metrics endpoint armed and a trace hook installed,
// scraping /metrics mid-run: the barrier-RTT, slot-ack-lag and frame
// accounting series must be present and the end-of-run snapshot must
// agree with the feed.
func TestClusterMetrics(t *testing.T) {
	addrs := startShards(t, 2)

	var mu sync.Mutex
	traced := map[greta.TraceKind]int{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	co, err := cluster.Connect(ctx, cluster.Config{
		Shards:      addrs,
		MetricsAddr: "127.0.0.1:0",
		TraceHook: func(te greta.TraceEvent) {
			mu.Lock()
			traced[te.Kind]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range diffQueries {
		if _, err := co.Register(q); err != nil {
			t.Fatal(err)
		}
	}

	// Slow the generator down so the stream spans ~40s of event time and
	// crosses several slide boundaries — barriers only fan out when
	// windows close.
	cfg := greta.DefaultCluster(12000)
	cfg.Rate = 300
	events := greta.ClusterStream(cfg)
	half := len(events) / 2
	for _, ev := range events[:half] {
		if err := co.Process(ev); err != nil {
			t.Fatal(err)
		}
	}

	// Mid-run scrape: the cluster is live, watermarks and ack frontiers
	// are moving.
	addr := co.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with Config.MetricsAddr armed")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	series, err := obs.ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("mid-run exposition does not parse: %v", err)
	}
	for _, name := range []string{
		"greta_cluster_events_total",
		"greta_cluster_frames_total",
		"greta_cluster_frame_bytes_total",
		"greta_cluster_barriers_total",
		"greta_cluster_barrier_rtt_seconds",
		"greta_cluster_frame_encode_seconds",
		"greta_cluster_watermark",
		"greta_cluster_low_watermark",
		"greta_cluster_shards",
		"greta_cluster_slots",
		`greta_cluster_slot_ack_lag{slot="0"}`,
		`greta_cluster_slot_ack_lag{slot="1"}`,
	} {
		if !obs.HasSeries(series, name) {
			t.Errorf("mid-run /metrics missing %s", name)
		}
	}
	if got := series["greta_cluster_events_total"]; got != float64(half) {
		t.Errorf("greta_cluster_events_total = %v mid-run, want %v", got, half)
	}
	if series["greta_cluster_shards"] != 2 {
		t.Errorf("greta_cluster_shards = %v, want 2", series["greta_cluster_shards"])
	}

	for _, ev := range events[half:] {
		if err := co.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Barrier acks are credited by the link readers asynchronously;
	// poll until the round trips land.
	var m cluster.Metrics
	for deadline := time.Now().Add(10 * time.Second); ; {
		m = co.Metrics()
		if m.BarrierRTTCount > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.Events != uint64(len(events)) {
		t.Errorf("Metrics().Events = %d, want %d", m.Events, len(events))
	}
	if m.Shards != 2 || m.Slots != 2 {
		t.Errorf("Shards/Slots = %d/%d, want 2/2", m.Shards, m.Slots)
	}
	if m.Barriers == 0 {
		t.Error("no barriers counted over the differential workload")
	}
	if m.BarrierRTTCount == 0 || m.BarrierRTTMax <= 0 {
		t.Errorf("barrier RTT never observed: count=%d max=%s", m.BarrierRTTCount, m.BarrierRTTMax)
	}
	if m.Frames == 0 || m.FrameBytes == 0 {
		t.Errorf("frame accounting dead: frames=%d bytes=%d", m.Frames, m.FrameBytes)
	}
	if len(m.SlotAckLag) != 2 {
		t.Errorf("SlotAckLag has %d slots, want 2", len(m.SlotAckLag))
	}
	if m.LowWatermark > m.Watermark {
		t.Errorf("LowWatermark %d > Watermark %d", m.LowWatermark, m.Watermark)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if traced[greta.TraceBarrierEmit] == 0 {
		t.Error("TraceBarrierEmit never fired")
	}
	if traced[greta.TraceShardAdd] != 2 {
		t.Errorf("TraceShardAdd fired %d times, want 2", traced[greta.TraceShardAdd])
	}
}

// TestClusterMetricsScrapeRace hammers the snapshot and HTTP surfaces
// while the coordinator is feeding — run under -race in CI.
func TestClusterMetricsScrapeRace(t *testing.T) {
	addrs := startShards(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	co, err := cluster.Connect(ctx, cluster.Config{Shards: addrs, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Register(diffQueries[1]); err != nil {
		t.Fatal(err)
	}
	addr := co.MetricsAddr()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := co.Metrics()
			if m.LowWatermark > m.Watermark {
				t.Errorf("torn snapshot: low %d > wm %d", m.LowWatermark, m.Watermark)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				return
			}
			if _, err := obs.ParseProm(resp.Body); err != nil {
				t.Errorf("scrape during run does not parse: %v", err)
			}
			resp.Body.Close()
		}
	}()
	for _, ev := range greta.ClusterStream(greta.DefaultCluster(4000)) {
		if err := co.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
}
