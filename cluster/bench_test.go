package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/cluster"
	"github.com/greta-cep/greta/netstream"
)

// BenchmarkCluster measures end-to-end cluster ingest over loopback
// TCP — coordinator-side hashing, columnar frame encode, shard-side
// engine work, and the per-window barrier/merge protocol — across
// shard counts, Fig. 17-style (throughput vs parallel partitions, here
// with real process-boundary serialization in the loop). The single
// Kleene statement is the paper's Q2 on the Hadoop-cluster workload;
// windows close mid-stream so barriers and partial merges are
// exercised, not just the end-of-stream flush.
func BenchmarkCluster(b *testing.B) {
	q := `RETURN mapper, SUM(M.cpu)
		PATTERN SEQ(Start S, Measurement M+, End E)
		WHERE [job, mapper] AND M.load < NEXT(M).load
		GROUP-BY mapper
		WITHIN 20 seconds SLIDE 10 seconds`
	// 100k events ≈ 33 s of stream time: the 20 s windows close (and
	// barrier) twice mid-stream before the end-of-stream flush.
	events := greta.ClusterStream(greta.DefaultCluster(100000))
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srvs := make([]*netstream.Server, shards)
				addrs := make([]string, shards)
				for s := range srvs {
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					srv := cluster.ServeShard()
					go func() { _ = srv.Serve(ln) }()
					srvs[s], addrs[s] = srv, ln.Addr().String()
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				co, err := cluster.Connect(ctx, cluster.Config{Shards: addrs})
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := co.Register(q); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, ev := range events {
					if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
						b.Fatal(err)
					}
				}
				if err := co.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, srv := range srvs {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					_ = srv.Shutdown(ctx)
					cancel()
				}
				b.StartTimer()
			}
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			}
		})
	}
}
