package cluster

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/netstream"
)

// serverLine mirrors the server's output line shape (netstream's
// unexported wireOut): the subset of fields a shard link produces.
type serverLine struct {
	Registered *netstream.WireRegistered `json:"registered"`
	Session    *netstream.WireSession    `json:"session"`
	Resumed    *netstream.WireResumed    `json:"resumed"`
	Seq        uint64                    `json:"seq"`
	Ping       uint64                    `json:"ping"`
	Done       bool                      `json:"done"`
	Error      string                    `json:"error"`
	Warn       string                    `json:"warn"`
	Partial    *netstream.WirePartial    `json:"partial"`
	Ack        *netstream.WireAck        `json:"ack"`
	UnitStats  *netstream.WireUnitStats  `json:"unit_stats"`
	Shard      *netstream.WireShardInfo  `json:"shard"`
	Handoff    *netstream.WireHandoff    `json:"handoff"`
}

// link is one shard connection: a resumable netstream session in shard
// mode, with the client half of the resume protocol (sequence-stamped
// frames, bounded resend ring, durable-input dedup by server seq).
// All fields are guarded by co.mu; the reader goroutine takes it per
// line.
type link struct {
	co   *Coordinator
	idx  int
	addr string

	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	session  string
	seq      uint64 // last stamped client seq
	lastRecv uint64 // last consumed durable server seq
	ring     []netstream.WireEvent

	count       int               // shard handshake ack: slot modulus (0 = not yet)
	adopts      int               // count of shard-info acks (handshake + adopts)
	handoff     map[string]string // last received handoff blobs
	handoffEvID uint64            // donor's event-ID counter from that handoff
	buf         batchBuf
	pairs       []pair // per-event routing scratch (routeLocked)

	drained bool // slots handed off; no further fan-outs
	closing bool // intentional finish: reader exits on disconnect
	done    bool // server sent its final summary

	readerDone chan struct{}
}

// dialLink connects one shard, establishes a resumable session, and —
// when slots is non-nil or the cluster is fresh — performs the shard
// handshake hosting the given worker slots. Returns after the server
// acknowledges.
func (co *Coordinator) dialLink(ctx context.Context, idx int, addr string, slots []int) (*link, error) {
	conn, err := dialRetry(ctx, addr)
	if err != nil {
		return nil, err
	}
	l := &link{co: co, idx: idx, addr: addr, conn: conn,
		enc:        json.NewEncoder(&countingConnWriter{w: conn, n: co.met.frameBytes}),
		dec:        json.NewDecoder(bufio.NewReader(conn)),
		readerDone: make(chan struct{}),
	}
	go l.run()
	co.mu.Lock()
	defer co.mu.Unlock()
	l.sendRaw(netstream.WireEvent{Cmd: "session"})
	if err := co.waitLocked(func() bool { return l.session != "" }); err != nil {
		return nil, err
	}
	l.send(netstream.WireEvent{Cmd: "shard", Count: co.n0, Workers: slots})
	if err := co.waitLocked(func() bool { return l.count != 0 }); err != nil {
		return nil, err
	}
	return l, nil
}

// send stamps, rings, and writes one sequenced frame. co.mu held. A
// write error is ignored here: the reader notices the break and the
// resume replays the ring tail.
func (l *link) send(we netstream.WireEvent) {
	l.seq++
	we.Seq = l.seq
	l.ring = append(l.ring, we)
	if w := l.co.sendWin; len(l.ring) > w {
		l.ring = append(l.ring[:0], l.ring[len(l.ring)-w:]...)
	}
	if l.enc != nil {
		t0 := time.Now()
		_ = l.enc.Encode(we)
		l.co.met.encDur.Observe(time.Since(t0))
	}
	l.co.met.frames.Inc()
}

// sendRaw writes one unsequenced control line (session, resume,
// flush). co.mu held.
func (l *link) sendRaw(we netstream.WireEvent) {
	if l.enc != nil {
		_ = l.enc.Encode(we)
	}
}

// run is the link's reader goroutine: it decodes server lines for the
// life of the cluster, transparently redialing and resuming the
// session when the connection breaks.
func (l *link) run() {
	defer close(l.readerDone)
	for {
		l.readLoop()
		co := l.co
		co.mu.Lock()
		if l.done || l.closing || co.closed || co.err != nil {
			co.mu.Unlock()
			return
		}
		l.enc, l.dec = nil, nil
		_ = l.conn.Close()
		co.mu.Unlock()
		if err := l.reattach(); err != nil {
			co.mu.Lock()
			co.fail(fmt.Errorf("cluster: shard %d: %w", l.idx, err))
			co.mu.Unlock()
			return
		}
	}
}

// readLoop decodes lines until the connection breaks.
func (l *link) readLoop() {
	dec := l.dec
	if dec == nil {
		return
	}
	for {
		var o serverLine
		if err := dec.Decode(&o); err != nil {
			return
		}
		l.co.handleLine(l, &o)
		l.co.mu.Lock()
		stop := l.done
		l.co.mu.Unlock()
		if stop {
			return
		}
	}
}

// reattach heals a broken link: redial under the resume timeout,
// identify the session and the last durable line consumed, and replay
// the unacknowledged frame tail. A rebase (the server lost our replay
// window) is fatal — the merge state cannot be rebuilt.
func (l *link) reattach() error {
	co := l.co
	ctx, cancel := context.WithTimeout(context.Background(), co.resumeT)
	defer cancel()
	conn, err := dialRetry(ctx, l.addr)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(&countingConnWriter{w: conn, n: co.met.frameBytes})
	dec := json.NewDecoder(bufio.NewReader(conn))

	co.mu.Lock()
	sess, recv := l.session, l.lastRecv
	co.mu.Unlock()
	if err := enc.Encode(netstream.WireEvent{Cmd: "resume", Session: sess, Recv: recv}); err != nil {
		_ = conn.Close()
		return err
	}
	var ack uint64
	for {
		var o serverLine
		if err := dec.Decode(&o); err != nil {
			_ = conn.Close()
			return err
		}
		if o.Resumed == nil {
			if o.Error != "" {
				_ = conn.Close()
				return fmt.Errorf("resume: %s", o.Error)
			}
			continue // pings; durable lines only follow the ack
		}
		if o.Resumed.Rebase {
			_ = conn.Close()
			return fmt.Errorf("resume: session rebased (replay window exceeded)")
		}
		ack = o.Resumed.Seq
		break
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	if ack < l.seq {
		need := l.seq - ack
		if uint64(len(l.ring)) < need || l.ring[len(l.ring)-int(need)].Seq != ack+1 {
			_ = conn.Close()
			return fmt.Errorf("resume window exceeded (server applied through seq %d)", ack)
		}
		for _, we := range l.ring[len(l.ring)-int(need):] {
			if err := enc.Encode(we); err != nil {
				_ = conn.Close()
				return err
			}
		}
	}
	l.conn, l.enc, l.dec = conn, enc, dec
	co.met.resumes.Inc()
	return nil
}

// handleLine applies one server line under co.mu: resume bookkeeping
// (heartbeats swallowed, duplicate durable lines skipped by seq), then
// the shard-link payloads — partial windows into the merger, barrier
// acks into the release frontiers, stats folds, handshake and handoff
// acknowledgements.
func (co *Coordinator) handleLine(l *link, o *serverLine) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if o.Ping != 0 {
		return
	}
	if o.Seq != 0 {
		if o.Seq <= l.lastRecv {
			return // duplicate replay of a line already consumed
		}
		l.lastRecv = o.Seq
	}
	switch {
	case o.Warn != "":
		co.warnings = append(co.warnings, fmt.Sprintf("shard %d: %s", l.idx, o.Warn))
	case o.Error != "":
		co.fail(fmt.Errorf("cluster: shard %d: %s", l.idx, o.Error))
	case o.Session != nil:
		l.session = o.Session.ID
		co.cond.Broadcast()
	case o.Shard != nil:
		l.count = o.Shard.Count
		l.adopts++
		co.cond.Broadcast()
	case o.Registered != nil:
		if u := co.unitID[o.Registered.ID]; u != nil {
			delete(u.regPend, l)
			co.cond.Broadcast()
		}
	case o.Handoff != nil:
		l.handoff = o.Handoff.Blobs
		if l.handoff == nil {
			l.handoff = map[string]string{}
		}
		l.handoffEvID = o.Handoff.EvID
		co.cond.Broadcast()
	case o.Partial != nil:
		co.onPartialLocked(l, o.Partial)
	case o.Ack != nil:
		co.onAckLocked(o.Ack)
	case o.UnitStats != nil:
		co.onUnitStatsLocked(o.UnitStats)
	case o.Done:
		l.done = true
		co.cond.Broadcast()
	}
}

// onPartialLocked files one slot's released window into the unit's
// pending merge state — mergeLoop's partial bookkeeping.
func (co *Coordinator) onPartialLocked(l *link, p *netstream.WirePartial) {
	u := co.units[p.SI]
	if u == nil || p.W < 0 || p.W >= co.n0 {
		return
	}
	raw, err := base64.StdEncoding.DecodeString(p.Payload)
	if err != nil {
		co.fail(fmt.Errorf("cluster: shard %d: bad partial payload: %w", l.idx, err))
		return
	}
	pl, err := core.UnmarshalPayload(raw)
	if err != nil {
		co.fail(fmt.Errorf("cluster: shard %d: partial decode: %w", l.idx, err))
		return
	}
	wmap := u.pending[p.Wid]
	if wmap == nil {
		wmap = map[string][]*aggregate.Payload{}
		u.pending[p.Wid] = wmap
	}
	slot := wmap[p.Group]
	if slot == nil {
		slot = make([]*aggregate.Payload, co.n0)
		wmap[p.Group] = slot
	}
	slot[p.W] = pl
}

// onAckLocked advances one slot's release frontier and emits every
// window now acknowledged by all slots — mergeLoop's release path.
func (co *Coordinator) onAckLocked(a *netstream.WireAck) {
	if a.W < 0 || a.W >= co.n0 {
		return
	}
	if a.T > co.slotAck[a.W] {
		co.slotAck[a.W] = a.T
	}
	co.ackBarrierLocked(a.SI, a.W, a.Hi)
	u := co.units[a.SI]
	if u == nil || a.Hi <= u.released[a.W] {
		return
	}
	u.released[a.W] = a.Hi
	co.drainUnitPendingLocked(u)
	co.cond.Broadcast()
}

// onUnitStatsLocked folds one slot's final engine counters into the
// statement — RunParallel's per-worker stats fold.
func (co *Coordinator) onUnitStatsLocked(s *netstream.WireUnitStats) {
	u := co.units[s.SI]
	if u == nil || s.W < 0 || s.W >= co.n0 || u.statsSeen[s.W] {
		return
	}
	u.statsSeen[s.W] = true
	u.statsLeft--
	u.st.FoldRemoteStats(s.Stats)
	co.cond.Broadcast()
}
