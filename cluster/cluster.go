// Package cluster turns the single-process parallel runtime
// (greta.Runtime.RunParallel) into a multi-process topology over
// netstream: one coordinator process drives N shard processes, each
// hosting one or more worker slots — the distributed analogue of
// RunParallel's N workers.
//
// The placement and merge contract is RunParallel's, verbatim. The
// coordinator computes the per-route-group FNV-1a partition hash once
// per event (core.HashRoute — shards never rehash) and forwards the
// event to the slot hash % N0, where N0 is the worker-slot count fixed
// at Connect. Statement registrations fan out to every slot under the
// watermark contract: the coordinator's global watermark rides the
// registration frame, so every slot cuts the new statement at the same
// instant. Per-statement window barriers precede the event that closes
// the window, exactly as feedWorkers orders them; slots release their
// partial windows and acknowledge over TCP, and the coordinator merges
// partials in slot order — float results stay bit-identical to a
// single-process RunParallel with the same worker count.
//
// Events travel as columnar batch frames (one frame-level sequence
// number each) over resumable netstream sessions: a broken shard link
// redials, resumes, and replays its unacknowledged tail in both
// directions, so every frame — events, barriers, registrations —
// applies exactly once. Per-slot barrier acknowledgements roll up into
// a global low-watermark (LowWatermark). Shards can be added cold
// (AddShard) and populated by draining another shard (Drain): the
// donor snapshots its slots behind a barrier and the destination
// adopts them, home indices intact, so the merge protocol never
// notices the migration.
//
// Deliberately not distributed: the shared sub-plan network (cluster
// statements register exclusively), transactional statements, reorder
// slack, and unpartitioned or composite statements — the latter run
// inline on the coordinator, preserving sequential semantics, just as
// RunParallel keeps them on its feed goroutine.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/obs"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/window"
	"github.com/greta-cep/greta/netstream"
)

// Config describes the cluster a Connect builds.
type Config struct {
	// Shards lists the shard server addresses. The initial topology
	// hosts one worker slot per shard; the slot count (the partition
	// modulus N0) is fixed for the cluster's lifetime, so adding shards
	// later redistributes existing slots rather than re-hashing keys.
	Shards []string
	// SendWindow bounds the per-link resend ring for resume replay
	// (frames, not events; default 65536).
	SendWindow int
	// ResumeTimeout bounds how long a broken link keeps redialing
	// before the cluster fails (default 10s).
	ResumeTimeout time.Duration
	// BatchRows caps the rows buffered per link before a frame is
	// flushed (default 512). Barriers, registrations, and lifecycle
	// commands always flush first — frames never straddle them.
	BatchRows int
	// MetricsAddr, when set, serves the coordinator's observability
	// surface (/metrics, /metrics.json, /debug/vars, /debug/pprof/) on
	// this address for the cluster's lifetime; Connect fails if it
	// cannot be bound. ":0" picks a free port — read it back from
	// Coordinator.MetricsAddr.
	MetricsAddr string
	// TraceHook, when set, receives the coordinator's lifecycle trace
	// events: greta.TraceBarrierEmit on every window-close fan-out,
	// greta.TraceShardAdd and greta.TraceShardDrain on membership
	// changes. It fires with the coordinator's lock held — it must
	// return quickly and must not call back into the Coordinator.
	TraceHook func(greta.TraceEvent)
}

// ServeShard configures a netstream Server as a cluster shard: shard
// links enabled, resumable sessions with a generous linger and replay
// window. The caller serves it: go srv.Serve(ln).
func ServeShard() *netstream.Server {
	return &netstream.Server{
		AllowShard:   true,
		Linger:       time.Minute,
		ResumeWindow: 1 << 20,
		// Adopt frames carry whole slot snapshots in one line.
		MaxLine: 1 << 30,
	}
}

// Coordinator is the cluster's feed half: it owns statement
// registration, routes events to worker slots over shard links, drives
// the per-statement window barrier schedule, and merges the slots'
// partial windows into final results — RunParallel's coordinator and
// merger roles, across process boundaries.
//
// A Coordinator is safe for concurrent use; operations that span a
// network round trip (Register, Handle.Close, Drain, Close) serialize.
// Result callbacks fire on link reader goroutines with the
// coordinator's lock held — they must not call back into the
// Coordinator.
type Coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	// rt registers every statement locally: partitioned units use their
	// local engine only as the merge/emit/stats surface (it never sees
	// events); inline statements process every event on it.
	rt *core.Runtime

	n0       int     // worker-slot modulus, fixed at Connect
	links    []*link // shard links, by shard index
	slotLink []int   // worker slot → hosting link index
	slotAck  []int64 // worker slot → latest acked barrier time

	units   map[int]*unit // unit index → live partitioned unit
	unitID  map[string]*unit
	order   []int // live unit indices, ascending (barrier order)
	inline  []*core.Stmt
	groups  []*routeGroup
	grpSig  map[string]int
	nextSI  int
	wm      int64 // global watermark (-1 before the first event)
	rowCap  int
	sendWin int
	resumeT time.Duration

	// routing scratch and shape caches (see batch.go).
	touched   []int
	schShapes map[*greta.Schema]*schView
	mapShapes map[string]*rowShape

	warnings []string
	busy     bool // serializes multi-step operations that wait mid-flight
	closed   bool
	err      error

	// observability (see metrics.go): pre-registered cells, the scrape
	// registry and optional listener, in-flight barrier RTT tracking,
	// and the lifecycle trace hook.
	met         *coMetrics
	reg         *obs.Registry
	metLn       net.Listener
	trace       func(greta.TraceEvent)
	barPend     map[barKey]*barWait
	lastHandoff time.Duration
}

// routeGroup is one partition-attribute signature: the shared
// accessors the hash is computed with, and how many live units use it.
type routeGroup struct {
	acc  []event.Accessor
	refs int
}

// unit is one live partitioned statement: its barrier cursor and the
// merge state mirroring RunParallel's mergeLoop (pending partials per
// window, per-slot release frontiers).
type unit struct {
	si, gi  int
	st      *core.Stmt
	win     window.Spec
	def     *aggregate.Def
	parPrev int64

	pending   map[int64]map[string][]*aggregate.Payload // wid → group → per-slot partial
	released  []int64                                   // per-slot highest released wid
	statsSeen []bool
	statsLeft int
	regPend   map[*link]bool
}

// Handle is a registered statement's result surface, mirroring
// greta.Handle: results accumulate for Results (sorted after Close),
// OnResult streams them as windows merge.
type Handle struct {
	co *Coordinator
	st *core.Stmt
	u  *unit // nil for inline statements
}

// regCfg collects RegisterOption state.
type regCfg struct {
	id    string
	exact bool
	force bool
}

// RegisterOption customizes one Register call.
type RegisterOption func(*regCfg)

// WithID names the statement (default "q<n>").
func WithID(id string) RegisterOption { return func(c *regCfg) { c.id = id } }

// WithExactArithmetic aggregates in exact (big-rational) arithmetic
// on every slot instead of native floats.
func WithExactArithmetic() RegisterOption { return func(c *regCfg) { c.exact = true } }

// WithForceVertexScan disables the summary fast path on every slot
// (differential testing and debugging).
func WithForceVertexScan() RegisterOption { return func(c *regCfg) { c.force = true } }

// Connect dials every shard, establishes resumable sessions, and fixes
// the cluster's worker-slot topology: len(cfg.Shards) slots, slot i on
// shard i. It fails if any shard is unreachable under ctx or rejects
// the handshake.
func Connect(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	co := &Coordinator{
		rt:        core.NewRuntime(),
		n0:        len(cfg.Shards),
		units:     map[int]*unit{},
		unitID:    map[string]*unit{},
		grpSig:    map[string]int{},
		wm:        -1,
		rowCap:    cfg.BatchRows,
		sendWin:   cfg.SendWindow,
		resumeT:   cfg.ResumeTimeout,
		schShapes: map[*greta.Schema]*schView{},
		mapShapes: map[string]*rowShape{},
		trace:     cfg.TraceHook,
	}
	co.reg = obs.NewRegistry()
	co.met = newCoMetrics(co.reg)
	co.registerCollector()
	if cfg.MetricsAddr != "" {
		ln, err := obs.Serve(cfg.MetricsAddr, co.reg)
		if err != nil {
			return nil, fmt.Errorf("cluster: metrics listener: %w", err)
		}
		co.metLn = ln
	}
	co.cond = sync.NewCond(&co.mu)
	if co.rowCap <= 0 {
		co.rowCap = 512
	}
	if co.sendWin <= 0 {
		co.sendWin = 1 << 16
	}
	if co.resumeT <= 0 {
		co.resumeT = 10 * time.Second
	}
	co.slotLink = make([]int, co.n0)
	co.slotAck = make([]int64, co.n0)
	for w := range co.slotAck {
		co.slotLink[w] = w
		co.slotAck[w] = -1
	}
	for i, addr := range cfg.Shards {
		l, err := co.dialLink(ctx, i, addr, []int{i})
		if err != nil {
			_ = co.Close()
			return nil, err
		}
		co.links = append(co.links, l)
		co.mu.Lock()
		co.fireTrace(greta.TraceEvent{Kind: greta.TraceShardAdd, Shard: i, Watermark: co.wm})
		co.mu.Unlock()
	}
	return co, nil
}

// begin acquires the multi-step-operation slot under co.mu.
func (co *Coordinator) begin() error {
	for co.busy {
		if co.closed {
			return greta.ErrClosed
		}
		co.cond.Wait()
	}
	if co.closed {
		return greta.ErrClosed
	}
	if co.err != nil {
		return co.err
	}
	co.busy = true
	return nil
}

func (co *Coordinator) end() {
	co.busy = false
	co.cond.Broadcast()
}

// waitLocked blocks until pred holds, a link fails, or the cluster
// closes. co.mu held; pred is evaluated under it.
func (co *Coordinator) waitLocked(pred func() bool) error {
	for !pred() {
		if co.err != nil {
			return co.err
		}
		if co.closed {
			return greta.ErrClosed
		}
		co.cond.Wait()
	}
	return nil
}

// fail records the first fatal cluster error and wakes every waiter.
// co.mu held.
func (co *Coordinator) fail(err error) {
	if co.err == nil {
		co.err = err
	}
	co.cond.Broadcast()
}

// Err returns the first fatal cluster error (a link beyond resume, a
// shard-reported fault), or nil.
func (co *Coordinator) Err() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

// Warnings returns non-fatal shard diagnostics collected so far.
func (co *Coordinator) Warnings() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	return slices.Clone(co.warnings)
}

// Slots returns the cluster's worker-slot count N0 — the partition
// modulus, fixed at Connect. Results are bit-identical to
// RunParallel with Slots workers.
func (co *Coordinator) Slots() int { return co.n0 }

// Shards returns the current shard-link count (drained links
// included).
func (co *Coordinator) Shards() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.links)
}

// Watermark returns the global event-time frontier (-1 before the
// first event).
func (co *Coordinator) Watermark() greta.Time {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.wm
}

// LowWatermark returns the cluster's merge frontier: the smallest
// barrier time every worker slot has acknowledged (-1 before the
// first acknowledged barrier). Windows at or below it are fully
// merged and emitted.
func (co *Coordinator) LowWatermark() greta.Time {
	co.mu.Lock()
	defer co.mu.Unlock()
	low := int64(math.MaxInt64)
	for _, t := range co.slotAck {
		if t < low {
			low = t
		}
	}
	if low == math.MaxInt64 {
		return -1
	}
	return low
}

// activeLinks returns the links that still host (or may come to host)
// worker slots — every command fan-out targets exactly these.
func (co *Coordinator) activeLinks() []*link {
	ls := make([]*link, 0, len(co.links))
	for _, l := range co.links {
		if !l.drained && !l.closing {
			ls = append(ls, l)
		}
	}
	return ls
}

// Register compiles and registers a statement. Partitioned statements
// (simple plans with at least one partition attribute) fan out to
// every worker slot stamped with the current watermark and are
// processed cluster-wide; anything else runs inline on the
// coordinator. Registration returns after every shard acknowledges.
func (co *Coordinator) Register(src string, opts ...RegisterOption) (*Handle, error) {
	var cfg regCfg
	for _, o := range opts {
		o(&cfg)
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	mode := aggregate.ModeNative
	if cfg.exact {
		mode = aggregate.ModeExact
	}
	plan, err := core.NewPlan(q, mode)
	if err != nil {
		return nil, err
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	if err := co.begin(); err != nil {
		return nil, err
	}
	defer co.end()
	// Sharing is deliberately off: cluster statements register
	// exclusively (the shared sub-plan network is not distributed).
	st, err := co.rt.Register(plan, core.StmtConfig{ID: cfg.id, ForceVertexScan: cfg.force})
	if err != nil {
		return nil, err
	}
	h := &Handle{co: co, st: st}
	if !st.Partitioned() {
		co.inline = append(co.inline, st)
		return h, nil
	}

	sig := strings.Join(st.RouteAttrs(), "\x1f")
	gi, ok := co.grpSig[sig]
	if !ok {
		gi = len(co.groups)
		co.groups = append(co.groups, &routeGroup{acc: st.RouteAccessors()})
		co.grpSig[sig] = gi
	}
	co.groups[gi].refs++
	u := &unit{
		si: co.nextSI, gi: gi, st: st,
		win: st.WindowSpec(), def: st.MergeDef(), parPrev: co.wm,
		pending:   map[int64]map[string][]*aggregate.Payload{},
		released:  make([]int64, co.n0),
		statsSeen: make([]bool, co.n0),
		statsLeft: co.n0,
		regPend:   map[*link]bool{},
	}
	co.nextSI++
	for w := range u.released {
		u.released[w] = math.MinInt64
	}
	h.u = u
	co.units[u.si] = u
	co.unitID[st.ID()] = u
	co.order = append(co.order, u.si)

	// Buffered rows precede the registration on every link, and the
	// registration frame carries the global watermark so each slot cuts
	// the new statement at the same instant.
	co.flushAllLocked()
	for _, l := range co.activeLinks() {
		u.regPend[l] = true
		l.send(netstream.WireEvent{
			Cmd: "sreg", SI: u.si, GI: u.gi, Query: plan.Query.String(), ID: st.ID(),
			Exact: cfg.exact, Force: cfg.force, Time: co.wm,
		})
	}
	if err := co.waitLocked(func() bool { return len(u.regPend) == 0 }); err != nil {
		return nil, err
	}
	return h, nil
}

// Process offers one event to the cluster: barriers for every window
// the event's time closes fan out first (feedWorkers' ordering), then
// inline statements process it, then it is routed — one hash per live
// route group — into the owning slots' batch frames. Late events are
// dropped and charged to every statement's OutOfOrder, as the
// single-process paths do.
func (co *Coordinator) Process(ev *greta.Event) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	for co.busy {
		if co.closed {
			return greta.ErrClosed
		}
		co.cond.Wait()
	}
	if co.closed {
		return greta.ErrClosed
	}
	if co.err != nil {
		return co.err
	}
	co.met.events.Inc()
	if ev.Time < co.wm {
		co.met.drops.Inc()
		for _, si := range co.order {
			co.units[si].st.AddOutOfOrder(1)
		}
		for _, st := range co.inline {
			st.AddOutOfOrder(1)
		}
		return greta.ErrOutOfOrder
	}
	co.wm = ev.Time
	co.rt.ObserveTime(ev.Time)

	// Window barriers precede the event that closes the window, so
	// every slot releases wid before any post-window event.
	for _, si := range co.order {
		u := co.units[si]
		if _, hi, ok := u.win.ClosedBy(u.parPrev, ev.Time); ok {
			co.flushAllLocked()
			co.trackBarrierLocked(u.si, hi)
			co.fireTrace(greta.TraceEvent{Kind: greta.TraceBarrierEmit,
				Stmt: u.st.ID(), Boundary: greta.Time(hi), Watermark: ev.Time})
			for _, l := range co.activeLinks() {
				l.send(netstream.WireEvent{Cmd: "barrier", SI: u.si, Time: ev.Time, Hi: hi})
			}
		}
		u.parPrev = ev.Time
	}
	for _, st := range co.inline {
		st.Engine().Process(ev)
	}
	if len(co.groups) > 0 {
		co.routeLocked(ev)
	}
	return nil
}

// routeLocked hashes ev once per live route group, gathers each
// target link's (group, hash) pairs, and appends the event — once per
// link — to the owning links' batch frames. co.mu held.
func (co *Coordinator) routeLocked(ev *greta.Event) {
	co.touched = co.touched[:0]
	for gi, g := range co.groups {
		if g.refs == 0 {
			continue
		}
		h := core.HashRoute(g.acc, ev)
		li := co.slotLink[int(h%uint64(co.n0))]
		l := co.links[li]
		if len(l.pairs) == 0 {
			co.touched = append(co.touched, li)
		}
		l.pairs = append(l.pairs, pair{gi: gi, h: h})
	}
	if len(co.touched) == 0 {
		return
	}
	r := co.rowOf(ev)
	for _, li := range co.touched {
		l := co.links[li]
		l.buf.add(l, r, l.pairs)
		l.pairs = l.pairs[:0]
		if len(l.buf.times) >= co.rowCap {
			l.buf.flush(l)
		}
	}
}

// flushAllLocked flushes every link's buffered batch frame. co.mu
// held.
func (co *Coordinator) flushAllLocked() {
	for _, l := range co.links {
		l.buf.flush(l)
	}
}

// closeUnitLocked drives a partitioned unit's distributed close: fan
// out, await every slot's final release and stats fold, then close the
// local statement (which sorts its retained results). co.mu held with
// the busy slot acquired.
func (co *Coordinator) closeUnitLocked(u *unit) error {
	co.flushAllLocked()
	for _, l := range co.activeLinks() {
		l.send(netstream.WireEvent{Cmd: "sclose", SI: u.si})
	}
	if err := co.waitLocked(u.done); err != nil {
		return err
	}
	co.dropUnitLocked(u)
	return u.st.Close()
}

// done reports whether every slot has fully released and folded the
// unit.
func (u *unit) done() bool {
	if u.statsLeft > 0 || len(u.pending) > 0 {
		return false
	}
	for _, r := range u.released {
		if r != math.MaxInt64 {
			return false
		}
	}
	return true
}

// dropUnitLocked removes a fully-closed unit from the live set.
func (co *Coordinator) dropUnitLocked(u *unit) {
	delete(co.units, u.si)
	delete(co.unitID, u.st.ID())
	if i := slices.Index(co.order, u.si); i >= 0 {
		co.order = slices.Delete(co.order, i, i+1)
	}
	co.groups[u.gi].refs--
	for k := range co.barPend {
		if k.si == u.si {
			delete(co.barPend, k)
		}
	}
}

// ID returns the statement id.
func (h *Handle) ID() string { return h.st.ID() }

// OnResult streams merged windows to f as they are released. f runs
// on a link reader goroutine with the coordinator locked — it must not
// call back into the Coordinator or the Handle.
func (h *Handle) OnResult(f func(greta.Result)) { h.st.OnResult(f) }

// Results returns the merged results so far (every emitted window; in
// group/window order after Close).
func (h *Handle) Results() []greta.Result { return h.st.Results() }

// Stats returns the statement's counters. For partitioned statements
// the slot engines' counters fold in when the unit closes (Handle.Close
// or Coordinator.Close); before that only coordinator-side counters
// (OutOfOrder, Results) are populated.
func (h *Handle) Stats() greta.Stats { return h.st.Stats() }

// Close closes the statement mid-stream. Partitioned units flush
// their open windows on every slot as partials; the merged windows
// emit before Close returns, and the slots' engine counters fold into
// Stats.
func (h *Handle) Close() error {
	co := h.co
	co.mu.Lock()
	defer co.mu.Unlock()
	if err := co.begin(); err != nil {
		return err
	}
	defer co.end()
	if h.u == nil {
		if i := slices.Index(co.inline, h.st); i >= 0 {
			co.inline = slices.Delete(co.inline, i, i+1)
		}
		return h.st.Close()
	}
	if _, live := co.units[h.u.si]; !live {
		return nil
	}
	return co.closeUnitLocked(h.u)
}

// Close ends the stream: every unit's open windows flush on every
// slot, the merged tails emit, slot stats fold, sessions finish
// gracefully, and every link goroutine exits. Safe to call twice.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		err := co.err
		co.mu.Unlock()
		return err
	}
	for co.busy {
		co.cond.Wait()
		if co.closed {
			err := co.err
			co.mu.Unlock()
			return err
		}
	}
	co.busy = true
	if co.err == nil {
		co.flushAllLocked()
		for _, l := range co.activeLinks() {
			l.send(netstream.WireEvent{Cmd: "eos"})
		}
		for _, si := range slices.Clone(co.order) {
			u := co.units[si]
			if err := co.waitLocked(u.done); err != nil {
				break
			}
			co.dropUnitLocked(u)
		}
	}
	_ = co.rt.Close()
	for _, l := range co.links {
		if !l.closing {
			l.closing = true
			l.sendRaw(netstream.WireEvent{Cmd: "flush"})
		}
	}
	co.closed = true
	co.busy = false
	err := co.err
	co.cond.Broadcast()
	links := slices.Clone(co.links)
	co.mu.Unlock()

	for _, l := range links {
		if l.conn != nil {
			<-l.readerDone
			_ = l.conn.Close()
		}
	}
	if co.metLn != nil {
		_ = co.metLn.Close()
	}
	return err
}

// AddShard dials a new shard and joins it to the cluster cold: it
// hosts no worker slots until a Drain hands it some, but from now on
// receives every registration and barrier so adopted slots stay
// current. Returns the new shard's link index.
func (co *Coordinator) AddShard(ctx context.Context, addr string) (int, error) {
	co.mu.Lock()
	if err := co.begin(); err != nil {
		co.mu.Unlock()
		return 0, err
	}
	idx := len(co.links)
	co.mu.Unlock()

	l, err := co.dialLink(ctx, idx, addr, nil)

	co.mu.Lock()
	defer co.mu.Unlock()
	defer co.end()
	if err != nil {
		return 0, err
	}
	co.links = append(co.links, l)
	co.fireTrace(greta.TraceEvent{Kind: greta.TraceShardAdd, Shard: idx, Watermark: co.wm})
	// Replay the live units onto the empty shard's session so slots
	// adopted later keep receiving sreg/sclose consistently. (The
	// adopted snapshots carry the statements themselves; this keeps the
	// session's barrier fan-out valid for units registered afterwards.)
	return idx, nil
}

// Drain migrates every worker slot of shard from onto shard to: the
// donor snapshots each slot's full engine state behind the frames
// already sent, the destination adopts them under the same home
// indices, and the key ranges (hash % N0 == slot) move with them. The
// donor's session then finishes; the link index remains (drained).
// The merge protocol is undisturbed: released frontiers, pending
// partials, and stats folds are keyed by slot, not by shard.
func (co *Coordinator) Drain(from, to int) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if err := co.begin(); err != nil {
		return err
	}
	defer co.end()
	if from == to || from < 0 || from >= len(co.links) || to < 0 || to >= len(co.links) {
		return fmt.Errorf("cluster: bad drain %d -> %d", from, to)
	}
	lf, lt := co.links[from], co.links[to]
	if lf.drained || lt.drained || lf.closing || lt.closing {
		return fmt.Errorf("cluster: drain %d -> %d: shard already drained", from, to)
	}
	t0 := time.Now()
	co.flushAllLocked()
	lf.send(netstream.WireEvent{Cmd: "handoff"})
	if err := co.waitLocked(func() bool { return lf.handoff != nil }); err != nil {
		return err
	}
	blobs := lf.handoff
	lf.handoff = nil
	adopts := lt.adopts
	lt.send(netstream.WireEvent{Cmd: "adopt", Blobs: blobs, EvID: lf.handoffEvID})
	if err := co.waitLocked(func() bool { return lt.adopts > adopts }); err != nil {
		return err
	}
	for ws := range blobs {
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 || w >= co.n0 {
			co.fail(fmt.Errorf("cluster: drain: bad slot key %q", ws))
			return co.err
		}
		co.slotLink[w] = to
	}
	lf.drained = true
	lf.closing = true
	lf.sendRaw(netstream.WireEvent{Cmd: "flush"})
	d := time.Since(t0)
	co.met.handoffs.Inc()
	co.met.handoffDur.Observe(d)
	co.lastHandoff = d
	co.fireTrace(greta.TraceEvent{Kind: greta.TraceShardDrain, Shard: from,
		Watermark: co.wm, Dur: d})
	return nil
}

// BreakLink severs shard i's TCP connection without warning — a fault
// injection surface for tests and drills. The link redials, resumes
// the session, and replays the unacknowledged tail in both directions;
// the stream continues exactly-once.
func (co *Coordinator) BreakLink(i int) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if i < 0 || i >= len(co.links) {
		return fmt.Errorf("cluster: no shard link %d", i)
	}
	l := co.links[i]
	if l.conn == nil {
		return fmt.Errorf("cluster: link %d not connected", i)
	}
	// Already-closed is fine: the link is broken either way (a kill can
	// land while a previous break's reattach is still in flight).
	_ = l.conn.Close()
	return nil
}

// dialRetry dials addr, retrying until ctx expires.
func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	backoff := 10 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: dial %s: %w (last: %v)", addr, ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}
