package cluster_test

import (
	"cmp"
	"context"
	"errors"
	"net"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/cluster"
	"github.com/greta-cep/greta/netstream"
)

// startShards brings up n shard servers on loopback and returns their
// addresses.
func startShards(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := cluster.ServeShard()
		go func() { _ = srv.Serve(ln) }()
		addrs[i] = ln.Addr().String()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
	}
	return addrs
}

func connect(t *testing.T, addrs []string) *cluster.Coordinator {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	co, err := cluster.Connect(ctx, cluster.Config{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// compareResults asserts bit-identical result sets (group, window,
// bounds, every float value). Both sides are sorted by (group, wid)
// first: the reference handle yields emission order while a cluster
// statement's close-time flush sorts, and the two only coincide while
// a stream stays inside one window.
func compareResults(t *testing.T, label string, want, got []greta.Result) {
	t.Helper()
	want, got = slices.Clone(want), slices.Clone(got)
	byGroupWid := func(a, b greta.Result) int {
		if a.Group != b.Group {
			return strings.Compare(a.Group, b.Group)
		}
		return cmp.Compare(a.Wid, b.Wid)
	}
	slices.SortFunc(want, byGroupWid)
	slices.SortFunc(got, byGroupWid)
	if len(want) != len(got) {
		t.Fatalf("%s: %d reference results vs %d cluster results", label, len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Group != b.Group || a.Wid != b.Wid || a.WindowStart != b.WindowStart || a.WindowEnd != b.WindowEnd {
			t.Fatalf("%s result %d: (%q,%d,[%d,%d)) vs (%q,%d,[%d,%d))",
				label, i, a.Group, a.Wid, a.WindowStart, a.WindowEnd, b.Group, b.Wid, b.WindowStart, b.WindowEnd)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s result %d: %d values vs %d", label, i, len(a.Values), len(b.Values))
		}
		for k := range a.Values {
			if a.Values[k] != b.Values[k] {
				t.Fatalf("%s result %d value %d: %v vs %v (not bit-identical)",
					label, i, k, a.Values[k], b.Values[k])
			}
		}
	}
}

func collect(h *greta.Handle) []greta.Result {
	var rs []greta.Result
	for r := range h.Results() {
		rs = append(rs, r)
	}
	return rs
}

// The differential workload: two partitioned fastpath shapes (one
// Kleene SEQ with an equivalence attribute splitting groups across
// slots, one summary-foldable count) and one unpartitioned statement
// that must run inline on the coordinator.
var diffQueries = []string{
	`RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E)
	 WHERE [job, mapper] AND M.load < NEXT(M).load GROUP-BY mapper
	 WITHIN 20 seconds SLIDE 10 seconds`,
	`RETURN COUNT(*) PATTERN Measurement M+ WHERE [job] WITHIN 30 seconds SLIDE 10 seconds`,
	`RETURN COUNT(*) PATTERN SEQ(Start S, End E) WITHIN 30 seconds SLIDE 30 seconds`,
}

// TestClusterDifferential pins the tentpole contract: an N-shard
// cluster produces bit-identical results and Stats to a single-process
// RunParallel with N workers, across shard counts.
func TestClusterDifferential(t *testing.T) {
	events := greta.ClusterStream(greta.DefaultCluster(6000))
	for _, shards := range []int{1, 2, 4} {
		// Reference: single-process parallel run, sharing disabled to
		// match the cluster's exclusive registrations.
		ref := make([]*greta.Handle, len(diffQueries))
		refRt := greta.NewRuntime()
		for i, q := range diffQueries {
			var err error
			ref[i], err = refRt.Register(greta.MustCompile(q), greta.WithSharing(false))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := refRt.RunParallel(context.Background(), greta.NewSliceStream(events), shards); err != nil {
			t.Fatal(err)
		}
		if err := refRt.Close(); err != nil {
			t.Fatal(err)
		}

		co := connect(t, startShards(t, shards))
		hs := make([]*cluster.Handle, len(diffQueries))
		for i, q := range diffQueries {
			var err error
			hs[i], err = co.Register(q)
			if err != nil {
				t.Fatalf("shards=%d register %d: %v", shards, i, err)
			}
		}
		for _, ev := range events {
			if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
				t.Fatalf("shards=%d process: %v", shards, err)
			}
		}
		if err := co.Close(); err != nil {
			t.Fatalf("shards=%d close: %v", shards, err)
		}

		for i := range diffQueries {
			label := t.Name() + "/" + hs[i].ID()
			compareResults(t, label, collect(ref[i]), hs[i].Results())
			if ws, cs := ref[i].Stats(), hs[i].Stats(); ws != cs {
				t.Errorf("shards=%d query %d stats:\nref     %+v\ncluster %+v", shards, i, ws, cs)
			}
		}
	}
}

// TestClusterMidStreamRegisterClose covers dynamic statement
// lifecycle, which RunParallel forbids: statements register and close
// while the stream is live, on a 2-shard cluster, against a sequential
// single-process reference. Results must be bit-identical; the graph
// counters must match (peak gauges are per-slot sums and excluded).
func TestClusterMidStreamRegisterClose(t *testing.T) {
	events := greta.ClusterStream(greta.DefaultCluster(6000))
	q1 := `RETURN COUNT(*) PATTERN Measurement M+ WHERE [mapper] WITHIN 20 seconds SLIDE 10 seconds`
	q2 := `RETURN mapper, SUM(M.cpu) PATTERN Measurement M+ WHERE [mapper] GROUP-BY mapper WITHIN 30 seconds SLIDE 15 seconds`
	third, twoThird := len(events)/3, 2*len(events)/3

	seqRt := greta.NewRuntime()
	s1, err := seqRt.Register(greta.MustCompile(q1), greta.WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	var s2 *greta.Handle
	for i, ev := range events {
		if i == third {
			if s2, err = seqRt.Register(greta.MustCompile(q2), greta.WithSharing(false)); err != nil {
				t.Fatal(err)
			}
		}
		if i == twoThird {
			if err := s1.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := seqRt.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
			t.Fatal(err)
		}
	}
	if err := seqRt.Close(); err != nil {
		t.Fatal(err)
	}

	co := connect(t, startShards(t, 2))
	c1, err := co.Register(q1)
	if err != nil {
		t.Fatal(err)
	}
	var c2 *cluster.Handle
	for i, ev := range events {
		if i == third {
			if c2, err = co.Register(q2); err != nil {
				t.Fatal(err)
			}
		}
		if i == twoThird {
			if err := c1.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
			t.Fatal(err)
		}
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	compareResults(t, "q1", collect(s1), c1.Results())
	compareResults(t, "q2", collect(s2), c2.Results())
	for i, pair := range []struct {
		ref greta.Stats
		got greta.Stats
	}{{s1.Stats(), c1.Stats()}, {s2.Stats(), c2.Stats()}} {
		// Peak gauges fold as per-slot sums (upper bound), same as
		// RunParallel's worker fold; everything else must match the
		// sequential run exactly.
		ref, got := pair.ref, pair.got
		ref.PeakVertices, got.PeakVertices = 0, 0
		ref.PeakPayloads, got.PeakPayloads = 0, 0
		if ref != got {
			t.Errorf("query %d stats:\nseq     %+v\ncluster %+v", i+1, ref, got)
		}
	}
}

// TestClusterKillResume severs shard links mid-stream: the links
// redial, resume their sessions, and replay unacknowledged frames in
// both directions. Bit-identical results and stats against RunParallel
// prove no frame applied twice (and none was lost).
func TestClusterKillResume(t *testing.T) {
	events := greta.ClusterStream(greta.DefaultCluster(6000))
	q := diffQueries[0]

	refRt := greta.NewRuntime()
	ref, err := refRt.Register(greta.MustCompile(q), greta.WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := refRt.RunParallel(context.Background(), greta.NewSliceStream(events), 2); err != nil {
		t.Fatal(err)
	}
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}

	co := connect(t, startShards(t, 2))
	h, err := co.Register(q)
	if err != nil {
		t.Fatal(err)
	}
	kills := map[int]int{len(events) / 4: 0, len(events) / 2: 1, 3 * len(events) / 4: 0}
	for i, ev := range events {
		if link, ok := kills[i]; ok {
			if err := co.BreakLink(link); err != nil {
				t.Fatal(err)
			}
		}
		if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
			t.Fatal(err)
		}
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	compareResults(t, "kill-resume", collect(ref), h.Results())
	if ws, cs := ref.Stats(), h.Stats(); ws != cs {
		t.Errorf("stats after kill/resume:\nref     %+v\ncluster %+v", ws, cs)
	}
}

// TestClusterDrainHandoff rebalances mid-stream: a cold shard joins,
// a loaded shard drains its slots onto it (barrier + snapshot +
// adopt), and the stream continues. Slots keep their home indices, so
// results and stats stay bit-identical to the 2-worker reference.
func TestClusterDrainHandoff(t *testing.T) {
	events := greta.ClusterStream(greta.DefaultCluster(6000))
	q := diffQueries[0]

	refRt := greta.NewRuntime()
	ref, err := refRt.Register(greta.MustCompile(q), greta.WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := refRt.RunParallel(context.Background(), greta.NewSliceStream(events), 2); err != nil {
		t.Fatal(err)
	}
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}

	addrs := startShards(t, 3)
	co := connect(t, addrs[:2])
	h, err := co.Register(q)
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	for i, ev := range events {
		if i == half {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			idx, err := co.AddShard(ctx, addrs[2])
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if err := co.Drain(0, idx); err != nil {
				t.Fatal(err)
			}
		}
		if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
			t.Fatal(err)
		}
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if co.Shards() != 3 || co.Slots() != 2 {
		t.Fatalf("topology after drain: %d shards, %d slots", co.Shards(), co.Slots())
	}
	compareResults(t, "drain", collect(ref), h.Results())
	if ws, cs := ref.Stats(), h.Stats(); ws != cs {
		t.Errorf("stats after drain:\nref     %+v\ncluster %+v", ws, cs)
	}
}

// TestClusterDrainLargeSnapshot drains under real load: two statements
// and a 100k-event stream grow the donor's slot snapshot past the
// server's default 1 MiB line cap, so the adopt frame exercises the
// raised shard-server MaxLine. Results and stats stay bit-identical to
// the 2-worker reference through the rebalance.
func TestClusterDrainLargeSnapshot(t *testing.T) {
	events := greta.ClusterStream(greta.DefaultCluster(100000))
	q2 := `RETURN mapper, SUM(M.cpu)
		PATTERN SEQ(Start S, Measurement M+, End E)
		WHERE [job, mapper] AND M.load < NEXT(M).load
		GROUP-BY mapper
		WITHIN 60 seconds SLIDE 30 seconds`
	vol := `RETURN job, COUNT(M)
		PATTERN Measurement M+
		WHERE [job]
		GROUP-BY job
		WITHIN 60 seconds SLIDE 30 seconds`

	refRt := greta.NewRuntime()
	r1, err := refRt.Register(greta.MustCompile(q2), greta.WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := refRt.Register(greta.MustCompile(vol), greta.WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := refRt.RunParallel(context.Background(), greta.NewSliceStream(events), 2); err != nil {
		t.Fatal(err)
	}
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}

	addrs := startShards(t, 3)
	co := connect(t, addrs[:2])
	c1, err := co.Register(q2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := co.Register(vol)
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	for i, ev := range events {
		if i == half {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			idx, err := co.AddShard(ctx, addrs[2])
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if err := co.Drain(0, idx); err != nil {
				t.Fatal(err)
			}
		}
		if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
			t.Fatal(err)
		}
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	compareResults(t, "q2", collect(r1), c1.Results())
	compareResults(t, "volume", collect(r2), c2.Results())
	if ws, cs := r1.Stats(), c1.Stats(); ws != cs {
		t.Errorf("q2 stats:\nref     %+v\ncluster %+v", ws, cs)
	}
	if ws, cs := r2.Stats(), c2.Stats(); ws != cs {
		t.Errorf("volume stats:\nref     %+v\ncluster %+v", ws, cs)
	}
}

// TestClusterShutdownLeak is the goroutine guard: a full cluster run —
// coordinator, links, shard servers — must return the process to its
// goroutine baseline after Close and Shutdown (mirrors netstream's
// TestShutdownDrains).
func TestClusterShutdownLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		addrs := make([]string, 2)
		srvs := make([]*netstream.Server, 2)
		lns := make([]net.Listener, 2)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := cluster.ServeShard()
			go func() { _ = srv.Serve(ln) }()
			addrs[i], srvs[i], lns[i] = ln.Addr().String(), srv, ln
		}
		co := connect(t, addrs)
		h, err := co.Register(diffQueries[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range greta.ClusterStream(greta.DefaultCluster(500)) {
			if err := co.Process(ev); err != nil && !errors.Is(err, greta.ErrOutOfOrder) {
				t.Fatal(err)
			}
		}
		if err := co.Close(); err != nil {
			t.Fatal(err)
		}
		if len(h.Results()) == 0 {
			t.Fatal("no results before shutdown")
		}
		for i, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown %d: %v", i, err)
			}
			cancel()
			_ = lns[i].Close()
		}
	}()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<17)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}
