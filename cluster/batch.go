package cluster

import (
	"slices"
	"strconv"
	"strings"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/netstream"
)

// pair is one routed (route group, partition hash) target for an
// event.
type pair struct {
	gi int
	h  uint64
}

// rowShape is a batch frame's column layout: an event type plus its
// sorted numeric and string attribute names. Events of the same shape
// ride the same frame.
type rowShape struct {
	typ  string
	key  string
	nums []string
	strs []string
}

// schView caches the shape and slot permutation of one schema, so
// schema-bound events convert to shape order without re-sorting.
type schView struct {
	shape  *rowShape
	numIdx []int // shape.nums[i] == Sch.Numeric[numIdx[i]]
	strIdx []int
}

// row is one event converted to shape-ordered column values.
type row struct {
	shape *rowShape
	t     int64
	num   []float64
	strs  []string
}

func shapeKey(typ string, nums, strs []string) string {
	return typ + "\x00" + strings.Join(nums, "\x01") + "\x00" + strings.Join(strs, "\x01")
}

// rowOf converts ev into shape-ordered column values, caching shapes
// per schema pointer (schema-bound events) and per key (map events).
// co.mu held.
func (co *Coordinator) rowOf(ev *greta.Event) *row {
	if ev.Sch != nil {
		v := co.schShapes[ev.Sch]
		if v == nil {
			nums := slices.Clone(ev.Sch.Numeric)
			slices.Sort(nums)
			strs := slices.Clone(ev.Sch.Strings)
			slices.Sort(strs)
			v = &schView{
				shape:  &rowShape{typ: string(ev.Sch.Type), key: shapeKey(string(ev.Sch.Type), nums, strs), nums: nums, strs: strs},
				numIdx: make([]int, len(nums)),
				strIdx: make([]int, len(strs)),
			}
			for i, a := range nums {
				v.numIdx[i] = slices.Index(ev.Sch.Numeric, a)
			}
			for i, a := range strs {
				v.strIdx[i] = slices.Index(ev.Sch.Strings, a)
			}
			co.schShapes[ev.Sch] = v
		}
		r := &row{shape: v.shape, t: ev.Time,
			num: make([]float64, len(v.numIdx)), strs: make([]string, len(v.strIdx))}
		for i, j := range v.numIdx {
			r.num[i] = ev.Num[j]
		}
		for i, j := range v.strIdx {
			r.strs[i] = ev.StrV[j]
		}
		return r
	}
	nums := make([]string, 0, len(ev.Attrs))
	for a := range ev.Attrs {
		nums = append(nums, a)
	}
	slices.Sort(nums)
	strs := make([]string, 0, len(ev.Str))
	for a := range ev.Str {
		strs = append(strs, a)
	}
	slices.Sort(strs)
	key := shapeKey(string(ev.Type), nums, strs)
	shape := co.mapShapes[key]
	if shape == nil {
		shape = &rowShape{typ: string(ev.Type), key: key, nums: nums, strs: strs}
		co.mapShapes[key] = shape
	}
	r := &row{shape: shape, t: ev.Time,
		num: make([]float64, len(shape.nums)), strs: make([]string, len(shape.strs))}
	for i, a := range shape.nums {
		r.num[i] = ev.Attrs[a]
	}
	for i, a := range shape.strs {
		r.strs[i] = ev.Str[a]
	}
	return r
}

// batchBuf accumulates one link's pending columnar frame. Route info
// stays in the compact single-group form (frame-level GI, one hash per
// row) until a row with a different group — or several — promotes the
// frame to per-row group lists.
type batchBuf struct {
	shape *rowShape
	times []int64
	cols  [][]float64
	scols [][]string

	single bool
	gi     int
	rh     []string
	rgs    [][]int
	rhs    [][]string
}

// add appends one routed row. A shape change flushes the pending
// frame first; the caller flushes on the row cap. co.mu held.
func (b *batchBuf) add(l *link, r *row, pairs []pair) {
	if len(b.times) > 0 && b.shape.key != r.shape.key {
		b.flush(l)
	}
	if len(b.times) == 0 {
		b.shape = r.shape
		b.cols = make([][]float64, len(r.shape.nums))
		b.scols = make([][]string, len(r.shape.strs))
		b.single = true
		b.gi = -1
	}
	b.times = append(b.times, r.t)
	for i, v := range r.num {
		b.cols[i] = append(b.cols[i], v)
	}
	for i, v := range r.strs {
		b.scols[i] = append(b.scols[i], v)
	}
	if b.single && len(pairs) == 1 && (b.gi < 0 || b.gi == pairs[0].gi) {
		b.gi = pairs[0].gi
		b.rh = append(b.rh, strconv.FormatUint(pairs[0].h, 16))
		return
	}
	if b.single {
		b.promote()
	}
	rg := make([]int, len(pairs))
	rh := make([]string, len(pairs))
	for i, p := range pairs {
		rg[i] = p.gi
		rh[i] = strconv.FormatUint(p.h, 16)
	}
	b.rgs = append(b.rgs, rg)
	b.rhs = append(b.rhs, rh)
}

// promote rewrites the single-group route info into per-row lists
// (called before appending the row that broke the single form).
func (b *batchBuf) promote() {
	b.single = false
	b.rgs = make([][]int, len(b.rh))
	b.rhs = make([][]string, len(b.rh))
	for i, hx := range b.rh {
		b.rgs[i] = []int{b.gi}
		b.rhs[i] = []string{hx}
	}
	b.rh = nil
}

// flush sends the pending frame, if any, and resets the buffer. The
// frame's slices are handed off (the resend ring retains them), so the
// buffer starts fresh. co.mu held.
func (b *batchBuf) flush(l *link) {
	n := len(b.times)
	if n == 0 {
		return
	}
	we := netstream.WireEvent{Cmd: "batch", Type: b.shape.typ, Times: b.times}
	if len(b.cols) > 0 {
		we.Cols = make(map[string][]float64, len(b.cols))
		for i, a := range b.shape.nums {
			we.Cols[a] = b.cols[i]
		}
	}
	if len(b.scols) > 0 {
		we.SCols = make(map[string][]string, len(b.scols))
		for i, a := range b.shape.strs {
			we.SCols[a] = b.scols[i]
		}
	}
	if b.single {
		we.GI = b.gi
		we.RH = b.rh
	} else {
		we.RGs = b.rgs
		we.RHs = b.rhs
	}
	*b = batchBuf{}
	l.send(we)
}
