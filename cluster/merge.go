package cluster

import (
	"math"
	"slices"
)

// drainUnitPendingLocked releases every pending window all slots have
// acknowledged, exactly as RunParallel's mergeLoop does: windows in
// ascending wid order, groups sorted by name, each group's per-slot
// partials merged in slot order (the first non-nil payload is the
// base; later ones fold in with Def.Merge), the merged window emitted
// through the statement's own engine. Float results are bit-identical
// to the single-process merge because the fold order is the same.
// co.mu held.
func (co *Coordinator) drainUnitPendingLocked(u *unit) {
	minRel := int64(math.MaxInt64)
	for _, r := range u.released {
		if r < minRel {
			minRel = r
		}
	}
	if minRel == math.MinInt64 {
		return
	}
	var ready []int64
	for wid := range u.pending {
		if wid <= minRel {
			ready = append(ready, wid)
		}
	}
	slices.Sort(ready)
	for _, wid := range ready {
		groups := u.pending[wid]
		delete(u.pending, wid)
		names := make([]string, 0, len(groups))
		for g := range groups {
			names = append(names, g)
		}
		slices.Sort(names)
		for _, g := range names {
			slot := groups[g]
			merged := slot[0]
			for _, pl := range slot[1:] {
				if pl == nil {
					continue
				}
				if merged == nil {
					merged = pl
					continue
				}
				u.def.Merge(merged, pl)
			}
			if merged != nil {
				u.st.EmitWindow(g, wid, merged)
			}
		}
	}
}
