// Durability benchmarks: the cost of one checkpoint write (what a
// window boundary pays when WithCheckpoint is armed) and of a full
// Restore (crash-recovery latency before replay starts). They ride the
// Fig. 14/15 stock workload with open pane state, a shared-eligible
// pair, and a negation statement so the snapshot covers summaries with
// watermark versions.
package greta_test

import (
	"os"
	"testing"

	"github.com/greta-cep/greta"
)

var ckBenchQueries = []string{
	`RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 100 SLIDE 50`,
	`RETURN MIN(S.price), MAX(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 100 SLIDE 50`,
	`RETURN COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] WITHIN 100 SLIDE 50`,
}

// ckBenchRuntime arms checkpointing into dir (interval beyond the
// stream, so only explicit Checkpoint calls write) and warms the
// runtime with n stock events.
func ckBenchRuntime(b *testing.B, dir string, n int) *greta.Runtime {
	b.Helper()
	rt := greta.NewRuntime(greta.WithCheckpoint(dir, 1<<40))
	for _, q := range ckBenchQueries {
		if _, err := rt.Register(greta.MustCompile(q)); err != nil {
			b.Fatal(err)
		}
	}
	for _, ev := range stockStream(n, 0.01) {
		if err := rt.Process(ev); err != nil {
			b.Fatal(err)
		}
	}
	return rt
}

// BenchmarkCheckpointWrite measures one checkpoint of the warmed
// runtime — serialization plus the atomic temp+fsync+rename store
// write — and reports the snapshot size.
func BenchmarkCheckpointWrite(b *testing.B) {
	dir := b.TempDir()
	rt := ckBenchRuntime(b, dir, 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var size int64
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if info, err := e.Info(); err == nil && info.Size() > size {
				size = info.Size()
			}
		}
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
	_ = rt.Close()
}

// BenchmarkRestore measures rebuilding a Runtime from the checkpoint:
// load + checksum verify + decode + pool-backed rehydration of every
// pane, vertex, and summary. The post-restore Close (window flush) is
// excluded — recovery latency is the time until replay can start.
func BenchmarkRestore(b *testing.B) {
	dir := b.TempDir()
	rt := ckBenchRuntime(b, dir, 8000)
	if err := rt.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := greta.Restore(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = res.Close()
		b.StartTimer()
	}
	b.StopTimer()
	_ = rt.Close()
}
