package greta_test

import (
	"fmt"

	"github.com/greta-cep/greta"
)

// The paper's Fig. 3 / Example 1: eleven trends match (SEQ(A+,B))+ in
// the stream {a1, b2, a3, a4, b7}, containing twenty a-occurrences with
// attribute values 5, 6, 4.
func ExampleCompile() {
	stmt, err := greta.Compile(`
		RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr)
		PATTERN (SEQ(A+, B))+`)
	if err != nil {
		panic(err)
	}
	var b greta.Builder
	b.Add("A", 1, map[string]float64{"attr": 5})
	b.Add("B", 2, nil)
	b.Add("A", 3, map[string]float64{"attr": 6})
	b.Add("A", 4, map[string]float64{"attr": 4})
	b.Add("B", 7, nil)

	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	r := eng.Results()[0]
	fmt.Printf("COUNT(*)=%g COUNT(A)=%g MIN=%g MAX=%g SUM=%g AVG=%g\n",
		r.Values[0], r.Values[1], r.Values[2], r.Values[3], r.Values[4], r.Values[5])
	// Output: COUNT(*)=11 COUNT(A)=20 MIN=4 MAX=6 SUM=100 AVG=5
}

// Negation: Q3-style pattern — position report trends with no accident
// earlier in the stream. The accident at time 3 invalidates later
// reports (paper §5, Case 3).
func ExampleCompile_negation() {
	stmt := greta.MustCompile(`RETURN COUNT(*) PATTERN SEQ(NOT Accident A, Position P+)`)
	var b greta.Builder
	b.Add("Position", 1, nil)
	b.Add("Position", 2, nil)
	b.Add("Accident", 3, nil)
	b.Add("Position", 4, nil) // invalidated
	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	fmt.Println(eng.Results()[0].Values[0])
	// Output: 3
}

// Sliding windows: results stream out per window as it closes.
func ExampleEngine_OnResult() {
	stmt := greta.MustCompile(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`)
	eng := stmt.NewEngine()
	eng.OnResult(func(r greta.Result) {
		fmt.Printf("window %d: %g trends\n", r.Wid, r.Values[0])
	})
	var b greta.Builder
	b.Add("A", 1, nil)
	b.Add("A", 5, nil)
	b.Add("A", 12, nil)
	eng.Run(b.Stream())
	// Output:
	// window 0: 3 trends
	// window 1: 1 trends
}

// A Runtime hosts many statements over one shared ingest: both
// queries see each event once, and results stream per statement.
func ExampleRuntime() {
	rt := greta.NewRuntime()
	trends, _ := rt.Register(greta.MustCompile(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`))
	pairs, _ := rt.Register(greta.MustCompile(`RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 SLIDE 10`))

	var b greta.Builder
	b.Add("A", 1, nil)
	b.Add("A", 3, nil)
	b.Add("B", 5, nil)
	s := b.Stream()
	for ev := s.Next(); ev != nil; ev = s.Next() {
		if err := rt.Process(ev); err != nil {
			panic(err)
		}
	}
	rt.Close() // flush open windows

	for r := range trends.Results() {
		fmt.Printf("[%s] window %d: %g A-trends\n", trends.ID(), r.Wid, r.Values[0])
	}
	for r := range pairs.Results() {
		fmt.Printf("[%s] window %d: %g (A,B) pairs\n", pairs.ID(), r.Wid, r.Values[0])
	}
	// Output:
	// [q0] window 0: 3 A-trends
	// [q1] window 0: 2 (A,B) pairs
}

// Statements register and close at any point mid-stream without
// restarting the stream: a statement registered at watermark T sees
// only events at or after T, so windows that closed earlier never
// emit for it.
func ExampleRuntime_register() {
	rt := greta.NewRuntime()
	early, _ := rt.Register(greta.MustCompile(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), greta.WithID("early"))

	ev := func(id uint64, t greta.Time) *greta.Event {
		return &greta.Event{ID: id, Type: "A", Time: t}
	}
	// Window 0 ([0,10)) closes while only "early" is registered.
	rt.Process(ev(1, 2))
	rt.Process(ev(2, 8))
	rt.Process(ev(3, 12))

	// Register a second statement mid-stream, at watermark 12.
	late, _ := rt.Register(greta.MustCompile(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`), greta.WithID("late"))
	fmt.Printf("registered %q at watermark %d\n", late.ID(), rt.Watermark())

	rt.Process(ev(4, 14))
	rt.Process(ev(5, 23))
	rt.Close()

	for r := range early.Results() {
		fmt.Printf("[early] window %d: %g trends\n", r.Wid, r.Values[0])
	}
	for r := range late.Results() {
		// No window 0: it closed before "late" registered. Window 1 counts
		// only the suffix event a14, not a12.
		fmt.Printf("[late]  window %d: %g trends\n", r.Wid, r.Values[0])
	}
	// Output:
	// registered "late" at watermark 12
	// [early] window 0: 3 trends
	// [early] window 1: 3 trends
	// [early] window 2: 1 trends
	// [late]  window 1: 1 trends
	// [late]  window 2: 1 trends
}

// Exact arithmetic: the number of trends is Θ(2ⁿ); math/big keeps full
// precision where uint64 would wrap.
func ExampleWithExactArithmetic() {
	stmt := greta.MustCompile(`RETURN COUNT(*) PATTERN A+`, greta.WithExactArithmetic())
	var b greta.Builder
	for i := 1; i <= 70; i++ {
		b.Add("A", greta.Time(i), nil)
	}
	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	fmt.Printf("%.6g\n", eng.Results()[0].Values[0]) // 2^70 - 1
	// Output: 1.18059e+21
}
