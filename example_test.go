package greta_test

import (
	"fmt"

	"github.com/greta-cep/greta"
)

// The paper's Fig. 3 / Example 1: eleven trends match (SEQ(A+,B))+ in
// the stream {a1, b2, a3, a4, b7}, containing twenty a-occurrences with
// attribute values 5, 6, 4.
func ExampleCompile() {
	stmt, err := greta.Compile(`
		RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr)
		PATTERN (SEQ(A+, B))+`)
	if err != nil {
		panic(err)
	}
	var b greta.Builder
	b.Add("A", 1, map[string]float64{"attr": 5})
	b.Add("B", 2, nil)
	b.Add("A", 3, map[string]float64{"attr": 6})
	b.Add("A", 4, map[string]float64{"attr": 4})
	b.Add("B", 7, nil)

	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	r := eng.Results()[0]
	fmt.Printf("COUNT(*)=%g COUNT(A)=%g MIN=%g MAX=%g SUM=%g AVG=%g\n",
		r.Values[0], r.Values[1], r.Values[2], r.Values[3], r.Values[4], r.Values[5])
	// Output: COUNT(*)=11 COUNT(A)=20 MIN=4 MAX=6 SUM=100 AVG=5
}

// Negation: Q3-style pattern — position report trends with no accident
// earlier in the stream. The accident at time 3 invalidates later
// reports (paper §5, Case 3).
func ExampleCompile_negation() {
	stmt := greta.MustCompile(`RETURN COUNT(*) PATTERN SEQ(NOT Accident A, Position P+)`)
	var b greta.Builder
	b.Add("Position", 1, nil)
	b.Add("Position", 2, nil)
	b.Add("Accident", 3, nil)
	b.Add("Position", 4, nil) // invalidated
	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	fmt.Println(eng.Results()[0].Values[0])
	// Output: 3
}

// Sliding windows: results stream out per window as it closes.
func ExampleEngine_OnResult() {
	stmt := greta.MustCompile(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`)
	eng := stmt.NewEngine()
	eng.OnResult(func(r greta.Result) {
		fmt.Printf("window %d: %g trends\n", r.Wid, r.Values[0])
	})
	var b greta.Builder
	b.Add("A", 1, nil)
	b.Add("A", 5, nil)
	b.Add("A", 12, nil)
	eng.Run(b.Stream())
	// Output:
	// window 0: 3 trends
	// window 1: 1 trends
}

// Exact arithmetic: the number of trends is Θ(2ⁿ); math/big keeps full
// precision where uint64 would wrap.
func ExampleWithExactArithmetic() {
	stmt := greta.MustCompile(`RETURN COUNT(*) PATTERN A+`, greta.WithExactArithmetic())
	var b greta.Builder
	for i := 1; i <= 70; i++ {
		b.Add("A", greta.Time(i), nil)
	}
	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	fmt.Printf("%.6g\n", eng.Results()[0].Values[0]) // 2^70 - 1
	// Output: 1.18059e+21
}
