# Developer entry points. The repo needs only the Go toolchain.

GO ?= go

# PR selects the perf-snapshot file benchmarks write: `make bench PR=3`
# emits BENCH_3.json next to the earlier snapshots, preserving the
# trajectory. There is no default on purpose — a snapshot written to
# the wrong PR file silently corrupts the trajectory, so bench targets
# fail loudly when PR is unset. Override BENCH_OUT for an arbitrary
# path.
BENCH_OUT ?= BENCH_$(PR).json

.PHONY: build test race bench bench-quick alloc-guard api apicheck

# require-pr guards the bench targets: refuse to guess which snapshot
# file to write.
.PHONY: require-pr
require-pr:
	@test -n "$(PR)" || { \
		echo "error: PR is not set - run 'make bench PR=<n>' so the snapshot lands in BENCH_<n>.json" >&2; \
		exit 2; \
	}

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper-figure benchmarks (Fig. 14-17 + parallel
# partitions) with allocation stats and writes $(BENCH_OUT), the perf
# snapshot future changes are compared against.
bench: require-pr
	scripts/bench.sh $(BENCH_OUT) 2s

# bench-quick is the fast variant for local iteration (1 run per bench).
bench-quick: require-pr
	scripts/bench.sh $(BENCH_OUT) 1x

# alloc-guard runs the zero-allocation hot-path guard and the routing /
# pool micro-benchmarks. Metrics cells are armed by default, so the
# guard exercises the instrumented hot path; the overhead bench pins
# the armed-vs-disarmed cost at the public layer with -benchmem.
alloc-guard:
	$(GO) test -run TestNoHotPathAllocs -count=1 ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkPartitionRouting|BenchmarkPayloadPool' -benchmem ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkMetricsOverhead' -benchtime 1x -benchmem .

# obs-smoke runs a metrics-armed workload and a live 2-shard cluster,
# scrapes both /metrics endpoints, and asserts the key series families
# are present and parseable (see scripts/obs_smoke.sh).
.PHONY: obs-smoke
obs-smoke:
	scripts/obs_smoke.sh

# api regenerates api.txt, the committed fingerprint of the public API
# surface; apicheck fails if the code drifted from it (run in CI).
api:
	scripts/apicheck.sh update

apicheck:
	scripts/apicheck.sh check
