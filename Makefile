# Developer entry points. The repo needs only the Go toolchain.

GO ?= go

.PHONY: build test race bench bench-quick alloc-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the paper-figure benchmarks (Fig. 14-17 + parallel
# partitions) with allocation stats and writes BENCH_1.json, the perf
# snapshot future changes are compared against.
bench:
	scripts/bench.sh BENCH_1.json 2s

# bench-quick is the fast variant for local iteration (1 run per bench).
bench-quick:
	scripts/bench.sh BENCH_1.json 1x

# alloc-guard runs the zero-allocation hot-path guard and the routing /
# pool micro-benchmarks.
alloc-guard:
	$(GO) test -run TestNoHotPathAllocs -count=1 ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkPartitionRouting|BenchmarkPayloadPool' -benchmem ./internal/core
